"""The asyncio front-end: a newline-delimited JSON TCP server.

One asyncio task per connection reads request lines; each ``eval``
spawns a sub-task that awaits the service future (via
``asyncio.wrap_future``) and writes the response when it resolves — so a
single connection can pipeline many requests and receive responses out
of order, matched by ``id``.  All writes on a connection are serialized
through a per-connection lock.

Admission rejections (``overloaded``) surface immediately as error
responses rather than queuing — the client sees backpressure the moment
the service is saturated, which is what lets a well-behaved load
generator back off.

``python -m repro serve`` wires this to a :class:`~repro.serve.service.
TNNService` over a seeded demo model (plus any ``--model-file``
networks), installs SIGINT/SIGTERM handlers for graceful drain, and can
write a final metrics snapshot (``--metrics-out``) — the artifact the CI
``serve-smoke`` job uploads.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import gc
import json
import signal
from pathlib import Path
from time import monotonic
from typing import Optional

from ..obs import rtrace as _rtrace
from .protocol import (
    E_BAD_REQUEST,
    E_NO_MODEL,
    PROTOCOL,
    ProtocolError,
    ServeError,
    encode_line,
    error_response,
    ok_response,
    parse_request,
)
from .service import TNNService


async def _write_line(
    writer: asyncio.StreamWriter, lock: asyncio.Lock, data: bytes
) -> None:
    async with lock:
        writer.write(data)
        await writer.drain()


async def _write(writer: asyncio.StreamWriter, lock: asyncio.Lock, message: dict) -> None:
    await _write_line(writer, lock, encode_line(message))


async def _finish_eval(
    service: TNNService,
    message: dict,
    writer: asyncio.StreamWriter,
    lock: asyncio.Lock,
) -> None:
    req_id = message.get("id")
    deadline_ms = message.get("deadline_ms")
    # A client-supplied trace id is echoed on every response for this
    # request; server-generated ids stay internal so untraced clients
    # keep their byte-identity contract.
    trace_id = message.get("trace")
    try:
        future = service.submit(
            message["model"],
            message["volley_times"],
            params=message["params_times"],
            deadline_s=None if deadline_ms is None else deadline_ms / 1e3,
            trace_id=trace_id,
        )
    except ServeError as error:
        await _write(
            writer,
            lock,
            error_response(req_id, error.code, error.message, trace=trace_id),
        )
        return
    try:
        outputs = await asyncio.wrap_future(future)
    except ServeError as error:
        await _write(
            writer,
            lock,
            error_response(req_id, error.code, error.message, trace=trace_id),
        )
        return
    # The fingerprint resolved at admission, reported back when the
    # client asked: under hot-swap promotion an alias's meaning moves
    # between admissions, and byte-conformance is only checkable
    # against the version that actually served the request.
    model_id = (
        getattr(future, "model_id", None)
        if message.get("want_model_id")
        else None
    )
    trace = getattr(future, "rtrace", None)
    if trace is None:
        await _write(
            writer,
            lock,
            ok_response(req_id, outputs, trace=trace_id, model=model_id),
        )
        return
    # Time the response encode as the trace's final span; the root is
    # stretched to cover it so the recorded trace stays well-formed
    # (the ring holds this same object, so the span is visible there).
    start = monotonic()
    data = encode_line(
        ok_response(req_id, outputs, trace=trace_id, model=model_id)
    )
    end = monotonic()
    trace.graft("encode", start, end, 0)
    trace.stretch(end)
    await _write_line(writer, lock, data)


def _merge_worker_metrics(snapshots: list[dict]) -> dict:
    """Aggregate per-worker registry snapshots into one registry shape."""
    counters: dict[str, int] = {}
    timers: dict[str, dict] = {}
    maxima: dict[str, int] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, entry in snapshot.get("timers", {}).items():
            slot = timers.setdefault(name, {"calls": 0, "total_s": 0.0})
            slot["calls"] += entry.get("calls", 0)
            slot["total_s"] += entry.get("total_s", 0.0)
        for name, value in snapshot.get("maxima", {}).items():
            maxima[name] = max(maxima.get(name, 0), value)
    return {
        "counters": dict(sorted(counters.items())),
        "timers": {name: timers[name] for name in sorted(timers)},
        "maxima": dict(sorted(maxima.items())),
    }


def _metrics_payload(service: TNNService) -> dict:
    from .. import runtime
    from ..obs.metrics import METRICS

    per_worker = service.worker_metrics()
    return {
        "ok": True,
        "serve": service.stats(),
        "metrics": METRICS.snapshot(),
        # The unified runtime surface (plan tier + result cache +
        # engine probes); "plan_cache" keeps the pre-runtime shape for
        # one deprecation cycle of external scrapers.
        "cache": runtime.cache_info(),
        "plan_cache": runtime.legacy_plan_cache_info(),
        # The frontend cannot see child-process registries directly;
        # workers piggyback snapshots on eval replies (so these may lag
        # live state by a few batches).
        "workers": {
            "reporting": len(per_worker),
            "per_worker": per_worker,
            "merged": _merge_worker_metrics(per_worker),
        },
    }


def _metrics_text_payload(service: TNNService) -> dict:
    from .. import runtime
    from .stats import PROMETHEUS_CONTENT_TYPE, prometheus_text

    info = runtime.cache_info()
    gauges = {
        "serve.pool.inflight": service.pool.inflight(),
        "serve.pending": service.pending(),
        "cache.plan.entries": info["plan"]["entries"],
        "cache.plan.bytes": info["plan"]["bytes"],
        "cache.result.entries": info["result"]["entries"],
        "cache.result.bytes": info["result"]["bytes"],
        "cache.result.hits": info["result"]["hits"],
        "cache.result.misses": info["result"]["misses"],
        "cache.result.evictions": info["result"]["evictions"],
    }
    for name, ns in info["plan"]["namespaces"].items():
        gauges[f"cache.plan.{name}.hits"] = ns["hits_structural"]
        gauges[f"cache.plan.{name}.misses"] = ns["misses"]
        gauges[f"cache.plan.{name}.evictions"] = ns["evictions"]
    if service.training is not None:
        training = service.training.stats()
        gauges["training.presented"] = training["presented"]
        gauges["training.applied"] = training["applied"]
        gauges["training.snapshots"] = training["snapshots"]
        gauges["training.promotions"] = training["promotions"]
        gauges["training.queue.depth"] = training["queue"]["depth"]
        gauges["training.queue.dropped"] = training["queue"]["dropped"]
        if training["last_accuracy"] is not None:
            gauges["training.last_accuracy"] = training["last_accuracy"]
    text = prometheus_text(extra_gauges=gauges)
    return {"ok": True, "content_type": PROMETHEUS_CONTENT_TYPE, "text": text}


def _handle_train(service: TNNService, message: dict) -> dict:
    """Feed one wire volley to the training plane's queue (non-blocking)."""
    from ..train.ingest import TrainingItem

    req_id = message.get("id")
    plane = service.training
    if plane is None:
        return error_response(
            req_id, E_BAD_REQUEST, "server is not running a training plane"
        )
    volley = message["volley_times"]
    n_inputs = plane.incremental.column.n_inputs
    if len(volley) != n_inputs:
        return error_response(
            req_id,
            E_BAD_REQUEST,
            f"training column takes {n_inputs} lines, got {len(volley)}",
        )
    accepted = plane.ingest(
        TrainingItem(volley=volley, label=message.get("label"))
    )
    return {"id": req_id, "ok": True, "accepted": accepted}


def _handle_lineage(service: TNNService, message: dict) -> dict:
    """The training plane's provenance chain (optionally one model's)."""
    req_id = message.get("id")
    plane = service.training
    if plane is None:
        return error_response(
            req_id, E_BAD_REQUEST, "server is not running a training plane"
        )
    document = plane.lineage.describe()
    target = message.get("model")
    if target is not None:
        try:
            document["records"] = [
                record.to_json() for record in plane.lineage.chain(target)
            ]
        except KeyError as exc:
            return error_response(req_id, E_NO_MODEL, str(exc.args[0]))
    response = {"ok": True, "lineage": document}
    if req_id is not None:
        response["id"] = req_id
    return response


def _handle_promote(service: TNNService, message: dict) -> dict:
    """Hot-swap an alias (runs in an executor; the warm barrier blocks)."""
    req_id = message.get("id")
    try:
        summary = service.promote(
            message["alias"],
            message["model"],
            retire=message.get("retire", True),
        )
    except ServeError as error:
        return error_response(req_id, error.code, error.message)
    return {"id": req_id, "ok": True, **summary}


def _handle_model_doc(service: TNNService, message: dict) -> dict:
    """A model's serialized document (live or recently retired)."""
    req_id = message.get("id")
    try:
        fingerprint, document = service.document(message["model"])
    except ServeError as error:
        return error_response(req_id, error.code, error.message)
    response = {"ok": True, "model": fingerprint, "document": document}
    if req_id is not None:
        response["id"] = req_id
    return response


async def _handle_connection(
    service: TNNService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    shutdown: asyncio.Event,
) -> None:
    lock = asyncio.Lock()
    tasks: set[asyncio.Task] = set()
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            if not line.strip():
                continue
            try:
                message = parse_request(line)
            except ProtocolError as error:
                await _write(
                    writer,
                    lock,
                    error_response(None, E_BAD_REQUEST, str(error)),
                )
                continue
            op = message["op"]
            if op == "eval":
                task = asyncio.ensure_future(
                    _finish_eval(service, message, writer, lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            elif op == "health":
                await _write(
                    writer,
                    lock,
                    {
                        "ok": True,
                        "protocol": PROTOCOL,
                        "status": "serving",
                        "models": len(service.registry),
                        "workers_alive": service.pool.alive_count(),
                        "pending": service.pending(),
                    },
                )
            elif op == "metrics":
                await _write(writer, lock, _metrics_payload(service))
            elif op == "metrics_text":
                await _write(writer, lock, _metrics_text_payload(service))
            elif op == "models":
                await _write(
                    writer,
                    lock,
                    {
                        "ok": True,
                        "models": [
                            entry.describe()
                            for entry in service.registry.entries()
                        ],
                        "aliases": service.registry.aliases(),
                    },
                )
            elif op == "train":
                await _write(writer, lock, _handle_train(service, message))
            elif op == "lineage":
                await _write(writer, lock, _handle_lineage(service, message))
            elif op == "promote":
                # The warm barrier inside promote blocks on worker
                # round-trips; run it off the event loop so concurrent
                # eval traffic keeps flowing through the flip.
                response = await asyncio.get_running_loop().run_in_executor(
                    None, _handle_promote, service, message
                )
                await _write(writer, lock, response)
            elif op == "model_doc":
                await _write(writer, lock, _handle_model_doc(service, message))
            else:  # shutdown
                await _write(
                    writer, lock, {"ok": True, "status": "shutting-down"}
                )
                shutdown.set()
    finally:
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        with contextlib.suppress(Exception):
            writer.close()
            await writer.wait_closed()


async def run_server_async(
    service: TNNService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    metrics_out: Optional[str] = None,
    port_file: Optional[str] = None,
    flight_out: Optional[str] = None,
    lineage_out: Optional[str] = None,
    ready: Optional["asyncio.Future[int]"] = None,
) -> int:
    """Serve until a ``shutdown`` request or SIGINT/SIGTERM; returns 0.

    *ready* (if given) resolves to the bound port once listening —
    in-process callers (tests, benchmarks) use it instead of polling;
    *port_file* writes the bound port to disk for shell callers using
    ``--port 0``.  *flight_out* is a path prefix: the flight recorder is
    dumped to ``<prefix>.jsonl`` + ``<prefix>.trace.json`` on
    ``SIGUSR2`` and (rate-limited) whenever a trip — worker crash,
    deadline miss, overload burst — is observed.
    """
    shutdown = asyncio.Event()
    conn_tasks: set[asyncio.Task] = set()

    def _on_connection(r: asyncio.StreamReader, w: asyncio.StreamWriter) -> None:
        task = asyncio.ensure_future(_handle_connection(service, r, w, shutdown))
        conn_tasks.add(task)
        task.add_done_callback(conn_tasks.discard)

    def _dump_flight(reason: str) -> None:
        if not flight_out:
            return
        try:
            paths = _rtrace.FLIGHT.dump_to(flight_out, reason=reason)
            print(f"flight recorder dumped ({reason}): {paths}", flush=True)
        except OSError as exc:
            print(f"flight dump failed: {exc}", flush=True)

    async def _watch_trips() -> None:
        # Anomalies trip the recorder from service/pool threads; file
        # I/O happens here, on the loop, rate-limited to one dump per
        # watch interval.  dump_to itself trips "<reason>", so only
        # *foreign* trip growth counts.
        seen = sum(_rtrace.FLIGHT.stats()["trips"].values())
        while True:
            await asyncio.sleep(1.0)
            trips = _rtrace.FLIGHT.stats()["trips"]
            total = sum(trips.values())
            if total > seen:
                reason = max(trips, key=trips.get)
                _dump_flight(f"trip:{reason}")
                seen = sum(_rtrace.FLIGHT.stats()["trips"].values())

    server = await asyncio.start_server(_on_connection, host=host, port=port)
    bound_port = server.sockets[0].getsockname()[1]
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            loop.add_signal_handler(signum, shutdown.set)
    trip_watcher: Optional[asyncio.Task] = None
    if flight_out:
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            loop.add_signal_handler(
                signal.SIGUSR2, lambda: _dump_flight("sigusr2")
            )
        trip_watcher = asyncio.ensure_future(_watch_trips())
    if port_file:
        Path(port_file).write_text(f"{bound_port}\n", encoding="utf-8")
    if ready is not None and not ready.done():
        ready.set_result(bound_port)
    print(f"serving {len(service.registry)} model(s) on {host}:{bound_port}", flush=True)
    async with server:
        await shutdown.wait()
        server.close()
        await server.wait_closed()
    if conn_tasks:
        # Give open connections a beat to drain on EOF, then cancel
        # stragglers — a client holding its connection open must not
        # wedge shutdown.
        await asyncio.wait(conn_tasks, timeout=1.0)
        for task in list(conn_tasks):
            task.cancel()
        await asyncio.gather(*conn_tasks, return_exceptions=True)
    if trip_watcher is not None:
        trip_watcher.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await trip_watcher
    if service.training is not None:
        # Stop training before draining: a final snapshot folds any
        # queued-but-unapplied volleys in, and the lineage document is
        # complete when written.
        service.training.stop()
        if lineage_out:
            service.training.lineage.save(lineage_out)
            print(f"wrote training lineage to {lineage_out}", flush=True)
    if metrics_out:
        Path(metrics_out).write_text(
            json.dumps(_metrics_payload(service), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote metrics snapshot to {metrics_out}", flush=True)
    service.close(drain=True)
    print("server drained and stopped", flush=True)
    return 0


def build_service(args: argparse.Namespace) -> TNNService:
    """The service a ``python -m repro serve`` invocation runs."""
    from .batcher import BatchPolicy
    from .demo import demo_column
    from .pool import InlineWorkerPool, ProcessWorkerPool
    from .registry import ModelRegistry

    if getattr(args, "rtrace", False):
        _rtrace.enable_rtrace(True)
    registry = ModelRegistry()
    network, _volley = demo_column(args.model_seed, smoke=args.smoke)
    registry.register(network, name="demo")
    for kernel_name in args.kernel or []:
        from ..kernels import demo_network

        registry.register(
            demo_network(kernel_name), name=f"kernel:{kernel_name}"
        )
    for path in args.model_file or []:
        from ..network import serialize

        registry.register(serialize.load(path))
    documents = registry.documents()
    if args.inline:
        pool = InlineWorkerPool(documents, engine=args.engine)
    else:
        pool = ProcessWorkerPool(
            documents, n_workers=args.workers, engine=args.engine
        )
    if getattr(args, "result_cache_entries", None):
        from ..runtime import RESULT_CACHE

        RESULT_CACHE.configure(max_entries=args.result_cache_entries)
    service = TNNService(
        registry,
        pool,
        policy=BatchPolicy(
            max_batch=args.max_batch, max_wait_s=args.max_wait_ms / 1e3
        ),
        max_pending=args.max_pending,
        default_deadline_s=(
            None if args.deadline_ms is None else args.deadline_ms / 1e3
        ),
        result_cache=not getattr(args, "no_result_cache", False),
    )
    if getattr(args, "train", False):
        from ..train import TrainingPlane, classification_scenario

        scenario = classification_scenario(
            smoke=args.smoke, seed=getattr(args, "train_seed", 0)
        )
        plane = TrainingPlane(
            service,
            scenario.column,
            alias=getattr(args, "train_alias", "digits@live"),
            trainer=scenario.make_trainer(),
            probe=scenario.probe,
            snapshot_every=getattr(args, "snapshot_every", 50),
            model_name=scenario.name,
        )
        service.training = plane
        plane.start()  # bootstraps: registers + aliases the seed column
    return service


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7070, help="TCP port (0 picks a free one)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker processes in the pool"
    )
    parser.add_argument(
        "--inline",
        action="store_true",
        help="evaluate in-process instead of in worker processes",
    )
    from ..runtime.registry import AUTO, ENGINES

    parser.add_argument(
        "--engine",
        choices=(AUTO, *ENGINES.serving_keys()),
        default=AUTO,
        help="evaluation backend policy resolved through the runtime "
        "engine registry: 'auto' (default) picks the best available "
        "batchable engine; an explicit key pins one",
    )
    parser.add_argument(
        "--no-result-cache",
        action="store_true",
        help="disable the (fingerprint, volley) result cache "
        "(armed by default; repeats then always re-evaluate)",
    )
    parser.add_argument(
        "--result-cache-entries",
        type=int,
        default=None,
        metavar="N",
        help="rebound the result cache to N entries (default 4096)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=64, help="micro-batch size trigger"
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="micro-batch latency trigger (milliseconds)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="admission bound; beyond it requests are rejected 'overloaded'",
    )
    parser.add_argument(
        "--deadline-ms",
        type=int,
        default=None,
        help="default per-request deadline (none if omitted)",
    )
    parser.add_argument(
        "--model-seed", type=int, default=0, help="seed of the built-in demo model"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="smaller demo model (CI budget)"
    )
    parser.add_argument(
        "--kernel",
        action="append",
        metavar="NAME",
        help=(
            "also serve a stdlib kernel demo model as 'kernel:NAME' "
            "(repeatable; see `python -m repro kernels`)"
        ),
    )
    parser.add_argument(
        "--model-file",
        action="append",
        metavar="PATH",
        help="also serve a serialized network (repeatable)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write a final metrics snapshot here on shutdown",
    )
    parser.add_argument(
        "--port-file",
        metavar="PATH",
        help="write the bound port here once listening (for --port 0)",
    )
    parser.add_argument(
        "--train",
        action="store_true",
        help=(
            "run the online training plane: serve the seeded "
            "classification scenario column under --train-alias, accept "
            "'train' ops, snapshot + hot-swap as it learns"
        ),
    )
    parser.add_argument(
        "--train-alias",
        default="digits@live",
        metavar="ALIAS",
        help="versioned alias the training plane promotes (default %(default)s)",
    )
    parser.add_argument(
        "--train-seed",
        type=int,
        default=0,
        help="seed of the training scenario and trainer",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=50,
        metavar="N",
        help="training presentations between snapshots/promotions",
    )
    parser.add_argument(
        "--lineage-out",
        metavar="PATH",
        help="write the training lineage document here on shutdown",
    )
    parser.add_argument(
        "--rtrace",
        action="store_true",
        help="enable request-scoped span tracing (repro.obs.rtrace)",
    )
    parser.add_argument(
        "--flight-out",
        metavar="PREFIX",
        help=(
            "dump the flight recorder to PREFIX.jsonl + PREFIX.trace.json "
            "on SIGUSR2 and on recorded anomalies"
        ),
    )


def serve_main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Serve TNN inference over newline-delimited JSON: concurrent "
            "single-volley requests are micro-batched into compiled "
            "evaluate_batch calls on a sharded worker pool.  Drive it "
            "with `python -m repro loadgen`."
        ),
    )
    add_serve_arguments(parser)
    args = parser.parse_args(argv)
    service = build_service(args)
    # Model documents, compiled plans, and the service machinery live for
    # the whole process; freezing them keeps full GC passes from scanning
    # the model heap on every allocation-heavy traced burst.
    gc.collect()
    gc.freeze()
    try:
        return asyncio.run(
            run_server_async(
                service,
                host=args.host,
                port=args.port,
                metrics_out=args.metrics_out,
                port_file=args.port_file,
                flight_out=args.flight_out,
                lineage_out=getattr(args, "lineage_out", None),
            )
        )
    except KeyboardInterrupt:
        service.close(drain=False)
        return 0
