"""Load generator and client-side conformance checker.

``python -m repro loadgen`` opens ``--concurrency`` connections, streams
``--requests`` deterministic seeded volleys at the server, and — unless
``--no-check`` — verifies **every** response byte-for-byte: the client
rebuilds the demo model from the same seed, confirms its fingerprint
matches the server's (the ``models`` op), evaluates the whole volley
stream locally with one direct ``evaluate_batch``, and compares each
served response line against the canonically-encoded local result.  A
single differing byte is a conformance failure and a non-zero exit.

Rejections (``overloaded``/``deadline``) are counted separately — they
are the backpressure contract working, not mismatches — but any
transport error, malformed response, or mismatch fails the run.  The
server's metrics snapshot is always fetched at the end — the summary
reports the serving engine and per-worker plan warmup counts from it —
and ``--metrics-out`` additionally writes the full snapshot to disk
(the CI artifact).  With ``--shutdown`` the last act is a ``shutdown``
op (clean server drain).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from pathlib import Path
from typing import Optional

from .demo import demo_column, demo_volleys
from .protocol import (
    canonical,
    encode_line,
    eval_request,
    ok_response,
    volley_to_wire,
)


class LoadgenError(RuntimeError):
    """A transport/protocol failure that invalidates the run."""


async def _request(reader, writer, message: dict) -> dict:
    """One in-order request/response exchange on a dedicated connection."""
    writer.write(encode_line(message))
    await writer.drain()
    line = await reader.readline()
    if not line:
        raise LoadgenError("connection closed mid-request")
    return json.loads(line)


async def _open(host: str, port: int, *, attempts: int = 40, delay: float = 0.25):
    """Connect with retries (the server may still be warming workers)."""
    for attempt in range(attempts):
        try:
            return await asyncio.open_connection(host, port)
        except OSError:
            if attempt == attempts - 1:
                raise
            await asyncio.sleep(delay)


async def run_loadgen(
    *,
    host: str = "127.0.0.1",
    port: int,
    requests: int = 500,
    concurrency: int = 32,
    seed: int = 0,
    model: str = "demo",
    model_seed: int = 0,
    smoke: bool = False,
    kernel: Optional[str] = None,
    check: bool = True,
    deadline_ms: Optional[int] = None,
    shutdown: bool = False,
    metrics_out: Optional[str] = None,
    trace: bool = False,
    report_out: Optional[str] = None,
) -> dict:
    """Drive the server; returns the run report (also printed by the CLI).

    With *kernel* set, the local oracle model is the stdlib kernel demo
    (:func:`repro.kernels.demo_network` — a pure function of the name,
    so client and server fingerprints agree by construction) and the
    targeted served model defaults to ``kernel:<name>``.

    With *trace* on, every request carries a deterministic trace id
    (``lg<i>``) and the byte-check expects the echoed ``trace`` field in
    each response — so the traced serving path is held to the exact same
    byte-identity contract as the untraced one.  *report_out* writes the
    run report as JSON (the CI overhead comparison reads two of these).
    """
    if kernel is not None:
        from ..kernels import demo_network

        network = demo_network(kernel)
        if model == "demo":
            model = f"kernel:{kernel}"
    else:
        network, _volley = demo_column(model_seed, smoke=smoke)
    arity = len(network.input_ids)
    volleys = demo_volleys(arity, requests, seed=seed)

    trace_ids: list[Optional[str]] = [
        f"lg{i}" if trace else None for i in range(requests)
    ]
    expected_lines: list[Optional[str]] = [None] * requests
    if check:
        from ..network.compile_plan import decode_matrix, evaluate_batch

        direct = decode_matrix(evaluate_batch(network, volleys))
        expected_lines = [
            canonical(ok_response(i, tuple(row), trace=trace_ids[i]))
            for i, row in enumerate(direct)
        ]

    # Fingerprint handshake: the byte-check below is only meaningful if
    # the server's model really is our local network.
    reader, writer = await _open(host, port)
    if check:
        reply = await _request(reader, writer, {"op": "models"})
        served = {m["name"]: m["id"] for m in reply.get("models", [])}
        served_id = served.get(model, model if model in reply else None)
        local_id = network.fingerprint()
        if served_id != local_id:
            raise LoadgenError(
                f"server model {model!r} has fingerprint "
                f"{(served_id or '?')[:12]}, local demo is {local_id[:12]} — "
                "did the seeds/--smoke flags match?"
            )

    results: list[Optional[dict]] = [None] * requests
    latencies: list[float] = [0.0] * requests
    index_iter = iter(range(requests))
    index_lock = asyncio.Lock()

    async def worker(conn) -> None:
        r, w = conn
        while True:
            async with index_lock:
                i = next(index_iter, None)
            if i is None:
                return
            message = eval_request(
                i, model, volleys[i], deadline_ms=deadline_ms, trace=trace_ids[i]
            )
            start = time.perf_counter()
            reply = await _request(r, w, message)
            latencies[i] = time.perf_counter() - start
            if reply.get("id") != i:
                raise LoadgenError(
                    f"response id {reply.get('id')!r} for request {i}"
                )
            results[i] = reply

    connections = [(reader, writer)]
    for _ in range(max(0, concurrency - 1)):
        connections.append(await _open(host, port))
    started = time.perf_counter()
    await asyncio.gather(*(worker(conn) for conn in connections))
    elapsed = time.perf_counter() - started

    ok = rejected_overload = rejected_deadline = failed = mismatches = 0
    first_mismatch: Optional[str] = None
    for i, reply in enumerate(results):
        if reply is None:
            raise LoadgenError(f"request {i} never completed")
        if reply.get("ok"):
            ok += 1
            if check:
                got = canonical(reply)
                if got != expected_lines[i]:
                    mismatches += 1
                    if first_mismatch is None:
                        first_mismatch = (
                            f"request {i} volley {volley_to_wire(volleys[i])}: "
                            f"served {got} != direct {expected_lines[i]}"
                        )
        elif reply.get("code") == "overloaded":
            rejected_overload += 1
        elif reply.get("code") == "deadline":
            rejected_deadline += 1
        else:
            failed += 1
            if first_mismatch is None:
                first_mismatch = f"request {i} failed: {canonical(reply)}"

    # Always fetch the metrics snapshot: the summary reports the serving
    # engine and per-worker plan warmups even without --metrics-out.
    metrics_reply = await _request(reader, writer, {"op": "metrics"})
    serve_info = metrics_reply.get("serve", {})
    if metrics_out:
        Path(metrics_out).write_text(
            json.dumps(metrics_reply, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if shutdown:
        await _request(reader, writer, {"op": "shutdown"})

    for r, w in connections:
        w.close()
    done = sorted(latencies[:requests])
    report = {
        "requests": requests,
        "concurrency": concurrency,
        "ok": ok,
        "rejected_overloaded": rejected_overload,
        "rejected_deadline": rejected_deadline,
        "failed": failed,
        "checked": check,
        "mismatches": mismatches,
        "first_mismatch": first_mismatch,
        "elapsed_s": round(elapsed, 4),
        "qps": round(requests / elapsed, 1) if elapsed > 0 else 0.0,
        "p50_ms": round(done[len(done) // 2] * 1e3, 3) if done else 0.0,
        "p99_ms": round(done[min(len(done) - 1, int(len(done) * 0.99))] * 1e3, 3)
        if done
        else 0.0,
        "engine": serve_info.get("engine"),
        "warmups": serve_info.get("warmups"),
        "traced": trace,
    }
    if report_out:
        Path(report_out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return report


def loadgen_main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro loadgen",
        description=(
            "Drive a `python -m repro serve` server with deterministic "
            "seeded volleys and byte-check every response against a "
            "direct local evaluate_batch of the same model."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7070)
    parser.add_argument("--requests", type=int, default=500)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0, help="volley stream seed")
    parser.add_argument("--model", default="demo", help="served model to target")
    parser.add_argument(
        "--model-seed",
        type=int,
        default=0,
        help="seed of the server's demo model (must match the server)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="the server was started with --smoke (smaller demo model)",
    )
    parser.add_argument(
        "--kernel",
        metavar="NAME",
        help=(
            "target a stdlib kernel demo served via `serve --kernel NAME` "
            "(rebuilds the same model locally for the byte-check)"
        ),
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the byte-identity conformance check",
    )
    parser.add_argument("--deadline-ms", type=int, default=None)
    parser.add_argument(
        "--shutdown",
        action="store_true",
        help="send a shutdown op after the run (clean server drain)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="fetch the server metrics snapshot and write it here",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "attach a deterministic trace id to every request and "
            "byte-check the echoed trace field"
        ),
    )
    parser.add_argument(
        "--report-out",
        metavar="PATH",
        help="write the run report as JSON (for throughput comparisons)",
    )
    args = parser.parse_args(argv)
    try:
        report = asyncio.run(
            run_loadgen(
                host=args.host,
                port=args.port,
                requests=args.requests,
                concurrency=args.concurrency,
                seed=args.seed,
                model=args.model,
                model_seed=args.model_seed,
                smoke=args.smoke,
                kernel=args.kernel,
                check=not args.no_check,
                deadline_ms=args.deadline_ms,
                shutdown=args.shutdown,
                metrics_out=args.metrics_out,
                trace=args.trace,
                report_out=args.report_out,
            )
        )
    except (LoadgenError, OSError, ValueError) as error:
        print(f"loadgen failed: {error}")
        return 1
    print(
        f"loadgen: {report['ok']}/{report['requests']} ok "
        f"({report['rejected_overloaded']} overloaded, "
        f"{report['rejected_deadline']} deadline, {report['failed']} failed) "
        f"in {report['elapsed_s']}s — {report['qps']} req/s, "
        f"p50 {report['p50_ms']}ms, p99 {report['p99_ms']}ms"
    )
    if report["checked"]:
        if report["mismatches"]:
            print(
                f"CONFORMANCE FAILURE: {report['mismatches']} response(s) "
                f"differ from direct evaluate_batch"
            )
            print(f"first: {report['first_mismatch']}")
        else:
            print(
                f"conformance: all {report['ok']} responses byte-identical "
                "to direct evaluate_batch"
            )
    bad = report["mismatches"] + report["failed"]
    return 1 if bad else 0
