"""Load generator and client-side conformance checker.

``python -m repro loadgen`` opens ``--concurrency`` connections, streams
``--requests`` deterministic seeded volleys at the server, and — unless
``--no-check`` — verifies **every** response byte-for-byte: the client
rebuilds the demo model from the same seed, confirms its fingerprint
matches the server's (the ``models`` op), evaluates the whole volley
stream locally with one direct ``evaluate_batch``, and compares each
served response line against the canonically-encoded local result.  A
single differing byte is a conformance failure and a non-zero exit.

Rejections (``overloaded``/``deadline``) are counted separately — they
are the backpressure contract working, not mismatches — but any
transport error, malformed response, or mismatch fails the run.  The
server's metrics snapshot is always fetched at the end — the summary
reports the serving engine and per-worker plan warmup counts from it —
and ``--metrics-out`` additionally writes the full snapshot to disk
(the CI artifact).  With ``--shutdown`` the last act is a ``shutdown``
op (clean server drain).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from pathlib import Path
from typing import Optional

from .demo import demo_column, demo_volleys
from .protocol import (
    canonical,
    encode_line,
    eval_request,
    ok_response,
    volley_to_wire,
)


class LoadgenError(RuntimeError):
    """A transport/protocol failure that invalidates the run."""


async def _request(reader, writer, message: dict) -> dict:
    """One in-order request/response exchange on a dedicated connection."""
    writer.write(encode_line(message))
    await writer.drain()
    line = await reader.readline()
    if not line:
        raise LoadgenError("connection closed mid-request")
    return json.loads(line)


#: Stream read limit: ``model_doc`` responses carry whole serialized
#: network documents, which easily exceed asyncio's 64 KiB default
#: readline bound.
_READ_LIMIT = 16 << 20


async def _open(host: str, port: int, *, attempts: int = 40, delay: float = 0.25):
    """Connect with retries (the server may still be warming workers)."""
    for attempt in range(attempts):
        try:
            return await asyncio.open_connection(host, port, limit=_READ_LIMIT)
        except OSError:
            if attempt == attempts - 1:
                raise
            await asyncio.sleep(delay)


async def run_loadgen(
    *,
    host: str = "127.0.0.1",
    port: int,
    requests: int = 500,
    concurrency: int = 32,
    seed: int = 0,
    model: str = "demo",
    model_seed: int = 0,
    smoke: bool = False,
    kernel: Optional[str] = None,
    check: bool = True,
    deadline_ms: Optional[int] = None,
    shutdown: bool = False,
    metrics_out: Optional[str] = None,
    trace: bool = False,
    report_out: Optional[str] = None,
    train_every: int = 0,
    promote_at: Optional[int] = None,
) -> dict:
    """Drive the server; returns the run report (also printed by the CLI).

    With *kernel* set, the local oracle model is the stdlib kernel demo
    (:func:`repro.kernels.demo_network` — a pure function of the name,
    so client and server fingerprints agree by construction) and the
    targeted served model defaults to ``kernel:<name>``.

    With *trace* on, every request carries a deterministic trace id
    (``lg<i>``) and the byte-check expects the echoed ``trace`` field in
    each response — so the traced serving path is held to the exact same
    byte-identity contract as the untraced one.  *report_out* writes the
    run report as JSON (the CI overhead comparison reads two of these).
    """
    if train_every:
        return await run_loadgen_live(
            host=host,
            port=port,
            requests=requests,
            concurrency=concurrency,
            seed=seed,
            model=model,
            check=check,
            deadline_ms=deadline_ms,
            shutdown=shutdown,
            metrics_out=metrics_out,
            report_out=report_out,
            train_every=train_every,
            promote_at=promote_at,
        )
    if kernel is not None:
        from ..kernels import demo_network

        network = demo_network(kernel)
        if model == "demo":
            model = f"kernel:{kernel}"
    else:
        network, _volley = demo_column(model_seed, smoke=smoke)
    arity = len(network.input_ids)
    volleys = demo_volleys(arity, requests, seed=seed)

    trace_ids: list[Optional[str]] = [
        f"lg{i}" if trace else None for i in range(requests)
    ]
    expected_lines: list[Optional[str]] = [None] * requests
    if check:
        from ..network.compile_plan import decode_matrix, evaluate_batch

        direct = decode_matrix(evaluate_batch(network, volleys))
        expected_lines = [
            canonical(ok_response(i, tuple(row), trace=trace_ids[i]))
            for i, row in enumerate(direct)
        ]

    # Fingerprint handshake: the byte-check below is only meaningful if
    # the server's model really is our local network.
    reader, writer = await _open(host, port)
    if check:
        reply = await _request(reader, writer, {"op": "models"})
        served = {m["name"]: m["id"] for m in reply.get("models", [])}
        served_id = served.get(model, model if model in reply else None)
        local_id = network.fingerprint()
        if served_id != local_id:
            raise LoadgenError(
                f"server model {model!r} has fingerprint "
                f"{(served_id or '?')[:12]}, local demo is {local_id[:12]} — "
                "did the seeds/--smoke flags match?"
            )

    results: list[Optional[dict]] = [None] * requests
    latencies: list[float] = [0.0] * requests
    index_iter = iter(range(requests))
    index_lock = asyncio.Lock()

    async def worker(conn) -> None:
        r, w = conn
        while True:
            async with index_lock:
                i = next(index_iter, None)
            if i is None:
                return
            message = eval_request(
                i, model, volleys[i], deadline_ms=deadline_ms, trace=trace_ids[i]
            )
            start = time.perf_counter()
            reply = await _request(r, w, message)
            latencies[i] = time.perf_counter() - start
            if reply.get("id") != i:
                raise LoadgenError(
                    f"response id {reply.get('id')!r} for request {i}"
                )
            results[i] = reply

    connections = [(reader, writer)]
    for _ in range(max(0, concurrency - 1)):
        connections.append(await _open(host, port))
    started = time.perf_counter()
    await asyncio.gather(*(worker(conn) for conn in connections))
    elapsed = time.perf_counter() - started

    ok = rejected_overload = rejected_deadline = failed = mismatches = 0
    first_mismatch: Optional[str] = None
    for i, reply in enumerate(results):
        if reply is None:
            raise LoadgenError(f"request {i} never completed")
        if reply.get("ok"):
            ok += 1
            if check:
                got = canonical(reply)
                if got != expected_lines[i]:
                    mismatches += 1
                    if first_mismatch is None:
                        first_mismatch = (
                            f"request {i} volley {volley_to_wire(volleys[i])}: "
                            f"served {got} != direct {expected_lines[i]}"
                        )
        elif reply.get("code") == "overloaded":
            rejected_overload += 1
        elif reply.get("code") == "deadline":
            rejected_deadline += 1
        else:
            failed += 1
            if first_mismatch is None:
                first_mismatch = f"request {i} failed: {canonical(reply)}"

    # Always fetch the metrics snapshot: the summary reports the serving
    # engine and per-worker plan warmups even without --metrics-out.
    metrics_reply = await _request(reader, writer, {"op": "metrics"})
    serve_info = metrics_reply.get("serve", {})
    if metrics_out:
        Path(metrics_out).write_text(
            json.dumps(metrics_reply, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if shutdown:
        await _request(reader, writer, {"op": "shutdown"})

    for r, w in connections:
        w.close()
    done = sorted(latencies[:requests])
    report = {
        "requests": requests,
        "concurrency": concurrency,
        "ok": ok,
        "rejected_overloaded": rejected_overload,
        "rejected_deadline": rejected_deadline,
        "failed": failed,
        "checked": check,
        "mismatches": mismatches,
        "first_mismatch": first_mismatch,
        "elapsed_s": round(elapsed, 4),
        "qps": round(requests / elapsed, 1) if elapsed > 0 else 0.0,
        "p50_ms": round(done[len(done) // 2] * 1e3, 3) if done else 0.0,
        "p99_ms": round(done[min(len(done) - 1, int(len(done) * 0.99))] * 1e3, 3)
        if done
        else 0.0,
        "engine": serve_info.get("engine"),
        "warmups": serve_info.get("warmups"),
        "traced": trace,
    }
    if report_out:
        Path(report_out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return report


async def run_loadgen_live(
    *,
    host: str = "127.0.0.1",
    port: int,
    requests: int = 500,
    concurrency: int = 32,
    seed: int = 0,
    model: str = "demo",
    check: bool = True,
    deadline_ms: Optional[int] = None,
    shutdown: bool = False,
    metrics_out: Optional[str] = None,
    report_out: Optional[str] = None,
    train_every: int = 4,
    promote_at: Optional[int] = None,
) -> dict:
    """Mixed eval/train load against a server running a training plane.

    Every ``train_every``-th request is a ``train`` op feeding the
    plane's queue; the rest are evals against the training alias.  The
    served model *evolves mid-run* (snapshots hot-swap the alias), so
    the byte-check cannot pre-compute one oracle: every eval carries
    ``want_model_id``, responses are grouped by the fingerprint that
    actually served them, and each group is checked byte-for-byte
    against a direct evaluation of the network rebuilt from that
    fingerprint's ``model_doc`` — retired versions included (the server
    archives their documents).  With *promote_at*, one client-driven
    ``promote`` of the alias to the current lineage head is issued
    mid-run, exercising the wire promotion path under load.
    """
    reader, writer = await _open(host, port)
    metrics_reply = await _request(reader, writer, {"op": "metrics"})
    training = metrics_reply.get("serve", {}).get("training")
    if training is None:
        raise LoadgenError(
            "server is not running a training plane (start it with --train)"
        )
    if model == "demo":
        model = training["alias"]
    models_reply = await _request(reader, writer, {"op": "models"})
    live = models_reply.get("aliases", {}).get(model)
    by_id = {m["id"]: m for m in models_reply.get("models", [])}
    if live is None or live not in by_id:
        raise LoadgenError(f"alias {model!r} is not serving a model")
    arity = len(by_id[live]["inputs"])

    volleys = demo_volleys(arity, requests, seed=seed)
    train_volleys = demo_volleys(
        arity, requests, seed=seed + 1, silence_probability=0.05
    )
    is_train = [
        train_every > 0 and i % train_every == train_every - 1
        for i in range(requests)
    ]

    results: list[Optional[dict]] = [None] * requests
    latencies: list[float] = [0.0] * requests
    index_iter = iter(range(requests))
    index_lock = asyncio.Lock()
    promotion: dict = {}

    async def promote_now(r, w) -> None:
        lineage = await _request(r, w, {"op": "lineage", "id": "lg-lineage"})
        head = lineage.get("lineage", {}).get("head")
        if not head:
            return
        reply = await _request(
            r, w,
            {"op": "promote", "id": "lg-promote", "alias": model, "model": head},
        )
        promotion.update(reply)

    async def worker(conn) -> None:
        r, w = conn
        while True:
            async with index_lock:
                i = next(index_iter, None)
            if i is None:
                return
            if promote_at is not None and i == promote_at:
                await promote_now(r, w)
            if is_train[i]:
                message = {
                    "op": "train",
                    "id": i,
                    "volley": volley_to_wire(train_volleys[i]),
                }
            else:
                message = eval_request(
                    i, model, volleys[i], deadline_ms=deadline_ms
                )
                if check:
                    message["want_model_id"] = True
            start = time.perf_counter()
            reply = await _request(r, w, message)
            latencies[i] = time.perf_counter() - start
            if reply.get("id") != i:
                raise LoadgenError(
                    f"response id {reply.get('id')!r} for request {i}"
                )
            results[i] = reply

    connections = [(reader, writer)]
    for _ in range(max(0, concurrency - 1)):
        connections.append(await _open(host, port))
    started = time.perf_counter()
    await asyncio.gather(*(worker(conn) for conn in connections))
    elapsed = time.perf_counter() - started

    ok = rejected_overload = rejected_deadline = failed = mismatches = 0
    train_ops = train_accepted = train_dropped = 0
    first_mismatch: Optional[str] = None
    by_fingerprint: dict[str, list[int]] = {}
    for i, reply in enumerate(results):
        if reply is None:
            raise LoadgenError(f"request {i} never completed")
        if is_train[i]:
            train_ops += 1
            if not reply.get("ok"):
                failed += 1
                if first_mismatch is None:
                    first_mismatch = f"train op {i} failed: {canonical(reply)}"
            elif reply.get("accepted"):
                train_accepted += 1
            else:
                train_dropped += 1
            continue
        if reply.get("ok"):
            ok += 1
            if check:
                fingerprint = reply.get("model")
                if not fingerprint:
                    raise LoadgenError(
                        f"response {i} carries no model fingerprint"
                    )
                by_fingerprint.setdefault(fingerprint, []).append(i)
        elif reply.get("code") == "overloaded":
            rejected_overload += 1
        elif reply.get("code") == "deadline":
            rejected_deadline += 1
        else:
            failed += 1
            if first_mismatch is None:
                first_mismatch = f"request {i} failed: {canonical(reply)}"

    if check and by_fingerprint:
        from ..network import serialize
        from ..network.compile_plan import decode_matrix, evaluate_batch

        for fingerprint, indices in sorted(by_fingerprint.items()):
            doc_reply = await _request(
                reader, writer, {"op": "model_doc", "model": fingerprint}
            )
            if not doc_reply.get("ok"):
                raise LoadgenError(
                    f"model_doc for served fingerprint "
                    f"{fingerprint[:12]} failed: {canonical(doc_reply)}"
                )
            version = serialize.loads(doc_reply["document"])
            if version.fingerprint() != fingerprint:
                raise LoadgenError(
                    f"document for {fingerprint[:12]} rebuilds to "
                    f"{version.fingerprint()[:12]}"
                )
            direct = decode_matrix(
                evaluate_batch(version, [volleys[i] for i in indices])
            )
            for i, row in zip(indices, direct):
                expected = canonical(
                    ok_response(i, tuple(row), model=fingerprint)
                )
                got = canonical(results[i])
                if got != expected:
                    mismatches += 1
                    if first_mismatch is None:
                        first_mismatch = (
                            f"request {i} volley {volley_to_wire(volleys[i])} "
                            f"on {fingerprint[:12]}: served {got} != direct "
                            f"{expected}"
                        )

    metrics_reply = await _request(reader, writer, {"op": "metrics"})
    serve_info = metrics_reply.get("serve", {})
    if metrics_out:
        Path(metrics_out).write_text(
            json.dumps(metrics_reply, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if shutdown:
        await _request(reader, writer, {"op": "shutdown"})
    for r, w in connections:
        w.close()

    done = sorted(latencies[:requests])
    report = {
        "requests": requests,
        "concurrency": concurrency,
        "ok": ok,
        "rejected_overloaded": rejected_overload,
        "rejected_deadline": rejected_deadline,
        "failed": failed,
        "checked": check,
        "mismatches": mismatches,
        "first_mismatch": first_mismatch,
        "elapsed_s": round(elapsed, 4),
        "qps": round(requests / elapsed, 1) if elapsed > 0 else 0.0,
        "p50_ms": round(done[len(done) // 2] * 1e3, 3) if done else 0.0,
        "p99_ms": round(done[min(len(done) - 1, int(len(done) * 0.99))] * 1e3, 3)
        if done
        else 0.0,
        "engine": serve_info.get("engine"),
        "warmups": serve_info.get("warmups"),
        "traced": False,
        "alias": model,
        "train_ops": train_ops,
        "train_accepted": train_accepted,
        "train_dropped": train_dropped,
        "models_served": len(by_fingerprint),
        "promotion": promotion or None,
        "training": serve_info.get("training"),
    }
    if report_out:
        Path(report_out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return report


def loadgen_main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro loadgen",
        description=(
            "Drive a `python -m repro serve` server with deterministic "
            "seeded volleys and byte-check every response against a "
            "direct local evaluate_batch of the same model."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7070)
    parser.add_argument("--requests", type=int, default=500)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0, help="volley stream seed")
    parser.add_argument("--model", default="demo", help="served model to target")
    parser.add_argument(
        "--model-seed",
        type=int,
        default=0,
        help="seed of the server's demo model (must match the server)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="the server was started with --smoke (smaller demo model)",
    )
    parser.add_argument(
        "--kernel",
        metavar="NAME",
        help=(
            "target a stdlib kernel demo served via `serve --kernel NAME` "
            "(rebuilds the same model locally for the byte-check)"
        ),
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the byte-identity conformance check",
    )
    parser.add_argument("--deadline-ms", type=int, default=None)
    parser.add_argument(
        "--shutdown",
        action="store_true",
        help="send a shutdown op after the run (clean server drain)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="fetch the server metrics snapshot and write it here",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "attach a deterministic trace id to every request and "
            "byte-check the echoed trace field"
        ),
    )
    parser.add_argument(
        "--report-out",
        metavar="PATH",
        help="write the run report as JSON (for throughput comparisons)",
    )
    parser.add_argument(
        "--train-every",
        type=int,
        default=0,
        metavar="N",
        help=(
            "live mode: make every Nth request a train op against the "
            "server's training plane (requires serve --train); evals are "
            "byte-checked per served fingerprint via model_doc"
        ),
    )
    parser.add_argument(
        "--promote-at",
        type=int,
        default=None,
        metavar="I",
        help=(
            "live mode: at request index I, promote the training alias "
            "to the current lineage head mid-run"
        ),
    )
    args = parser.parse_args(argv)
    try:
        report = asyncio.run(
            run_loadgen(
                host=args.host,
                port=args.port,
                requests=args.requests,
                concurrency=args.concurrency,
                seed=args.seed,
                model=args.model,
                model_seed=args.model_seed,
                smoke=args.smoke,
                kernel=args.kernel,
                check=not args.no_check,
                deadline_ms=args.deadline_ms,
                shutdown=args.shutdown,
                metrics_out=args.metrics_out,
                trace=args.trace,
                report_out=args.report_out,
                train_every=args.train_every,
                promote_at=args.promote_at,
            )
        )
    except (LoadgenError, OSError, ValueError) as error:
        print(f"loadgen failed: {error}")
        return 1
    print(
        f"loadgen: {report['ok']}/{report['requests']} ok "
        f"({report['rejected_overloaded']} overloaded, "
        f"{report['rejected_deadline']} deadline, {report['failed']} failed) "
        f"in {report['elapsed_s']}s — {report['qps']} req/s, "
        f"p50 {report['p50_ms']}ms, p99 {report['p99_ms']}ms"
    )
    if report.get("train_ops"):
        print(
            f"training: {report['train_accepted']}/{report['train_ops']} "
            f"train ops accepted ({report['train_dropped']} dropped), "
            f"{report['models_served']} model version(s) served"
            + (
                f", promoted to {report['promotion']['model'][:12]}"
                if report.get("promotion")
                else ""
            )
        )
    if report["checked"]:
        if report["mismatches"]:
            print(
                f"CONFORMANCE FAILURE: {report['mismatches']} response(s) "
                f"differ from direct evaluate_batch"
            )
            print(f"first: {report['first_mismatch']}")
        else:
            print(
                f"conformance: all {report['ok']} responses byte-identical "
                "to direct evaluate_batch"
            )
    bad = report["mismatches"] + report["failed"]
    return 1 if bad else 0
