"""Wire protocol of the TNN inference service.

The service speaks **newline-delimited JSON** (one message per line) over
a plain TCP stream.  Requests and responses are JSON objects; a request
carries a client-chosen ``id`` and responses echo it, so a client may
pipeline requests and match responses out of order.

Times on the wire are members of ``N0∞``: a finite spike time is a
non-negative JSON integer, and ``∞`` — "no spike on this line" — is
spelled ``null``.  That makes a volley like ``(3, ∞, 0)`` the JSON array
``[3, null, 0]``.

Operations
----------
``eval``
    ``{"op": "eval", "id": 7, "model": "demo", "volley": [3, null, 0]}``
    with optional ``params`` (``{"name": 0 | null}``), ``deadline_ms``
    (a relative per-request deadline), and ``trace`` (a client-chosen
    trace id; echoed verbatim in the response and propagated through the
    request-tracing spans, including across worker-crash retries).
    Reply: ``{"id": 7, "ok": true, "outputs": [...]}`` or an error
    response — plus ``"trace"`` when the request carried one.
``health`` / ``metrics`` / ``models``
    Introspection; replies carry ``ok: true`` plus the payload.
``metrics_text``
    The same telemetry in Prometheus text exposition format: the reply
    is ``{"ok": true, "content_type": "text/plain; version=0.0.4",
    "text": "..."}`` with one exposition document in ``text`` —
    per-model/per-stage/per-outcome latency histograms, serve counters,
    and gauges.
``train``
    ``{"op": "train", "id": 3, "volley": [3, null, 0], "label": 1}``
    (``label`` optional) — feed one volley to the training plane's
    bounded queue.  Reply ``{"id": 3, "ok": true, "accepted": true}``;
    ``accepted: false`` means the queue was full and the volley dropped
    (training backpressure is visible, never blocking).  Requires the
    server to run with a training plane (``--train``); otherwise
    ``bad-request``.
``lineage``
    The training plane's model provenance chain (see
    :mod:`repro.train.lineage`); with optional ``"model"``, just the
    chain up to that fingerprint.
``promote``
    ``{"op": "promote", "id": 9, "alias": "digits@live", "model":
    "<fingerprint>"}`` — atomically hot-swap the alias to an
    already-registered model (warm-before-flip; see
    :meth:`repro.serve.service.TNNService.promote`).  ``retire`` (bool,
    default true) controls whether the superseded model is purged.
``model_doc``
    The serialized network document of a registered (or recently
    retired) model, so a client can rebuild it locally and byte-check
    responses against the exact version that served them.
``shutdown``
    Ask the server to stop accepting work, drain, and exit.

Responses are rendered **canonically** — compact separators, sorted
keys — so "byte-identical to a direct :func:`repro.network.compile_plan.
evaluate_batch`" is a meaningful, checkable contract: the conformance
harness (:mod:`repro.testing.served`) and ``python -m repro loadgen``
both re-encode the direct result with :func:`ok_response` /
:func:`canonical` and compare the bytes.

Error responses carry a machine-readable ``code`` from the closed set
below (:data:`ERROR_CODES`); :class:`ServeError` is the in-process
exception form every service layer raises and the front-end translates.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional, Sequence

from ..core.value import INF, Infinity, Time
from ..network.compile_plan import MAX_FINITE

#: Protocol identifier, echoed by ``health``.
PROTOCOL = "repro.serve/1"

#: Machine-readable error codes an error response may carry.
E_BAD_REQUEST = "bad-request"
E_NO_MODEL = "no-such-model"
E_OVERLOADED = "overloaded"
E_DEADLINE = "deadline"
E_WORKER = "worker-failure"
E_SHUTDOWN = "shutting-down"

ERROR_CODES = (
    E_BAD_REQUEST,
    E_NO_MODEL,
    E_OVERLOADED,
    E_DEADLINE,
    E_WORKER,
    E_SHUTDOWN,
)

#: Request operations the server understands.
OPS = (
    "eval",
    "health",
    "lineage",
    "metrics",
    "metrics_text",
    "model_doc",
    "models",
    "promote",
    "shutdown",
    "train",
)

#: Longest accepted client-supplied trace id (a sanity bound, not a
#: format: any non-empty string up to this length is a valid trace id).
MAX_TRACE_ID = 128


class ProtocolError(ValueError):
    """A malformed wire message (always answered with ``bad-request``)."""


class ServeError(Exception):
    """A service-level failure with a wire-protocol error code.

    Raised by the service core (admission control, deadlines, worker
    failures) and translated into an error response by the front-end;
    in-process callers of :meth:`repro.serve.service.TNNService.submit`
    see it as the future's exception.
    """

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown serve error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


# ---------------------------------------------------------------------------
# Time / volley encoding (∞ <-> null)
# ---------------------------------------------------------------------------

def time_to_wire(value: Time) -> Optional[int]:
    """One ``Time`` as its JSON form: ``∞`` -> ``null``."""
    return None if isinstance(value, Infinity) else int(value)


def time_from_wire(raw: Any) -> Time:
    """Parse one JSON time; validates membership in ``N0∞``."""
    if raw is None:
        return INF
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ProtocolError(f"time must be a non-negative integer or null, got {raw!r}")
    if raw < 0:
        raise ProtocolError(f"negative time {raw}")
    if raw > MAX_FINITE:
        raise ProtocolError(
            f"finite time {raw} exceeds the engine limit ({MAX_FINITE})"
        )
    return raw


def volley_to_wire(volley: Sequence[Time]) -> list[Optional[int]]:
    """A volley as its JSON array form."""
    return [time_to_wire(v) for v in volley]


def volley_from_wire(raw: Any) -> tuple[Time, ...]:
    """Parse a JSON volley array into a ``Time`` tuple."""
    if not isinstance(raw, list):
        raise ProtocolError(f"volley must be an array, got {type(raw).__name__}")
    return tuple(time_from_wire(v) for v in raw)


def params_to_wire(params: Mapping[str, Time]) -> dict[str, Optional[int]]:
    """A parameter binding as its JSON object form."""
    return {name: time_to_wire(value) for name, value in params.items()}


def params_from_wire(raw: Any) -> dict[str, Time]:
    """Parse a JSON parameter binding (names to ``0 | null``)."""
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise ProtocolError(f"params must be an object, got {type(raw).__name__}")
    return {str(name): time_from_wire(value) for name, value in raw.items()}


# ---------------------------------------------------------------------------
# Canonical rendering
# ---------------------------------------------------------------------------

def canonical(message: Mapping[str, Any]) -> str:
    """The canonical (compact, key-sorted) rendering of one message.

    Byte-identity claims are stated over this form: two messages are
    "the same response" exactly when their canonical strings are equal.
    """
    return json.dumps(message, separators=(",", ":"), sort_keys=True)


def encode_line(message: Mapping[str, Any]) -> bytes:
    """Canonical rendering plus the newline framing, as bytes."""
    return canonical(message).encode("utf-8") + b"\n"


# ---------------------------------------------------------------------------
# Message constructors
# ---------------------------------------------------------------------------

def eval_request(
    req_id: int,
    model: str,
    volley: Sequence[Time],
    *,
    params: Optional[Mapping[str, Time]] = None,
    deadline_ms: Optional[int] = None,
    trace: Optional[str] = None,
) -> dict[str, Any]:
    """An ``eval`` request message."""
    message: dict[str, Any] = {
        "op": "eval",
        "id": req_id,
        "model": model,
        "volley": volley_to_wire(volley),
    }
    if params:
        message["params"] = params_to_wire(params)
    if deadline_ms is not None:
        message["deadline_ms"] = int(deadline_ms)
    if trace is not None:
        message["trace"] = trace
    return message


def ok_response(
    req_id: Any,
    outputs: Sequence[Time],
    *,
    trace: Optional[str] = None,
    model: Optional[str] = None,
) -> dict[str, Any]:
    """A successful ``eval`` response (echoing the client trace id, if any).

    *model* is the fingerprint that actually served the request —
    attached when the client asked with ``want_model_id`` so responses
    stay attributable across hot-swap promotions.
    """
    message: dict[str, Any] = {
        "id": req_id,
        "ok": True,
        "outputs": volley_to_wire(outputs),
    }
    if trace is not None:
        message["trace"] = trace
    if model is not None:
        message["model"] = model
    return message


def error_response(
    req_id: Any, code: str, message: str, *, trace: Optional[str] = None
) -> dict[str, Any]:
    """An error response carrying a machine-readable *code*."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown serve error code {code!r}")
    response: dict[str, Any] = {
        "id": req_id,
        "ok": False,
        "code": code,
        "error": message,
    }
    if trace is not None:
        response["trace"] = trace
    return response


# ---------------------------------------------------------------------------
# Request parsing
# ---------------------------------------------------------------------------

def parse_request(line: "str | bytes") -> dict[str, Any]:
    """Parse and validate one request line.

    Returns the decoded message with ``op`` guaranteed to be one of
    :data:`OPS`; ``eval`` requests additionally have ``volley`` parsed
    into a ``Time`` tuple under ``"volley_times"`` and ``params`` under
    ``"params_times"`` (the raw JSON fields are left untouched).
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {', '.join(OPS)}")
    if op == "eval":
        if "id" not in message:
            raise ProtocolError("eval request needs an 'id'")
        if not isinstance(message.get("model"), str):
            raise ProtocolError("eval request needs a string 'model'")
        message["volley_times"] = volley_from_wire(message.get("volley"))
        message["params_times"] = params_from_wire(message.get("params"))
        deadline = message.get("deadline_ms")
        if deadline is not None and (
            isinstance(deadline, bool)
            or not isinstance(deadline, int)
            or deadline < 0
        ):
            raise ProtocolError("deadline_ms must be a non-negative integer")
        trace = message.get("trace")
        if trace is not None and (
            not isinstance(trace, str)
            or not trace
            or len(trace) > MAX_TRACE_ID
        ):
            raise ProtocolError(
                f"trace must be a non-empty string of at most "
                f"{MAX_TRACE_ID} characters"
            )
        if not isinstance(message.get("want_model_id", False), bool):
            raise ProtocolError("want_model_id must be a boolean")
    elif op == "train":
        if "id" not in message:
            raise ProtocolError("train request needs an 'id'")
        message["volley_times"] = volley_from_wire(message.get("volley"))
        label = message.get("label")
        if label is not None and (
            isinstance(label, bool) or not isinstance(label, int)
        ):
            raise ProtocolError(f"label must be an integer, got {label!r}")
    elif op == "promote":
        if "id" not in message:
            raise ProtocolError("promote request needs an 'id'")
        for field in ("alias", "model"):
            if not isinstance(message.get(field), str) or not message[field]:
                raise ProtocolError(
                    f"promote request needs a non-empty string {field!r}"
                )
        if not isinstance(message.get("retire", True), bool):
            raise ProtocolError("retire must be a boolean")
    elif op == "model_doc":
        if not isinstance(message.get("model"), str) or not message["model"]:
            raise ProtocolError(
                "model_doc request needs a non-empty string 'model'"
            )
    elif op == "lineage":
        model = message.get("model")
        if model is not None and (not isinstance(model, str) or not model):
            raise ProtocolError("lineage 'model' must be a non-empty string")
    return message
