"""Sharded worker pool: one compiled-and-warmed engine per process.

Each worker is a separate OS process that, at startup, rebuilds every
registered model from its serialized document (verifying the embedded
fingerprint), lowers it to the IR, runs the optimizer pass pipeline, and
**warms** every batchable engine in the runtime registry
(:meth:`~repro.runtime.engines.BackendEngine.warm`) — so the first real
request never pays compilation, first-touch, or JIT cost.  The
``engine`` option is a policy resolved through
:data:`repro.runtime.ENGINES` — ``"auto"`` (the default: best available
batchable engine) or an explicit key like ``"native"`` / ``"int64"`` —
and selects which engine answers eval messages; per-engine warmup
counts are reported per
worker through :meth:`ProcessWorkerPool.warmups`.  Work arrives as already-encoded ``(B, n_inputs)``
int64 matrices (the micro-batcher's output) and leaves as the engine's
raw ``(B, n_outputs)`` result, keeping the IPC payload two NumPy arrays
per batch.

Dispatch is **least-loaded**: :meth:`ProcessWorkerPool.submit` picks the
alive worker with the fewest in-flight batches.  A dedicated collector
thread multiplexes every worker pipe; a broken pipe (crash, kill, OOM)
is detected there, the dead worker's in-flight batches are failed back
to the service (which retries them on another worker), and a
replacement process is spawned in its place up to ``max_restarts``
times.  :meth:`ProcessWorkerPool.inject_crash` makes a worker die on
command — the fault-injection hook the served-conformance tests use to
prove byte-identical responses survive crashes.

:class:`InlineWorkerPool` is the same interface executed synchronously
in-process — no IPC, no fork — used by unit tests and by benchmark
configurations that isolate scheduling cost from process cost.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import multiprocessing.connection as mp_connection
import os
import threading
from dataclasses import dataclass, field
from time import monotonic
from typing import Callable

import numpy as np

from ..core.value import INF, Time
from ..obs import metrics as _obs_metrics
from ..obs import rtrace as _rtrace
from .protocol import E_WORKER, ServeError

#: Sentinel import kept local to the worker body; see _worker_main.
from ..network.compile_plan import INF_I64

#: A worker piggybacks its own metrics snapshot on every Nth eval reply
#: (the frontend cannot see child-process registries otherwise; every
#: reply would double the IPC payload for slow-moving counters).
_METRICS_PIGGYBACK_EVERY = 16


def _decode_params(params_enc: dict[str, int]) -> dict[str, Time]:
    """Sentinel-encoded parameter binding back to ``Time`` values."""
    return {
        name: (INF if value == INF_I64 else int(value))
        for name, value in params_enc.items()
    }


@dataclass
class Job:
    """One dispatched batch: encoded inputs plus completion callbacks.

    ``on_done`` receives the raw ``(B, n_outputs)`` int64 result;
    ``on_fail`` receives a human-readable reason.  Exactly one of the
    two is invoked, from the pool's collector thread (process pool) or
    the submitting thread (inline pool) — callbacks must be thread-safe.

    ``want_spans`` asks the executing worker to time the engine run and
    report it back: level 1 is wall clock only (two clock reads), level
    2 additionally runs the engine under :mod:`repro.obs.profile` for
    per-phase attribution (the priced path — the service samples it).
    ``on_extras``, when set, receives that timing payload —
    ``{"eval_s": float, "phases": {name: seconds}}`` — immediately
    before ``on_done``/``on_fail``.
    """

    job_id: int
    model_id: str
    matrix: np.ndarray
    params_enc: dict[str, int]
    on_done: Callable[[np.ndarray], None]
    on_fail: Callable[[str], None]
    want_spans: int = 0
    on_extras: "Callable[[dict], None] | None" = None


# ---------------------------------------------------------------------------
# Worker process body
# ---------------------------------------------------------------------------

def _worker_main(
    conn, documents: dict[str, str], optimize: bool, engine: str = "auto"
) -> None:
    """The worker loop: load + warm every model, then serve eval messages.

    Runs in a child process (or, for unit tests, a plain thread with the
    other pipe end held by the test).  *engine* selects the evaluation
    backend for ``eval`` messages, resolved through the runtime engine
    registry — an engine key (``"native"``, ``"int64"``) or the
    ``"auto"`` policy (best available batchable engine).  Every
    batchable engine is compiled and warmed at load time regardless, so
    switching engines never costs a request its latency budget; the
    per-engine warmup counts ride back on the ready message.  Messages:

    * ``("eval", job_id, model_id, matrix, params_enc)`` →
      ``("ok", job_id, result)`` or ``("err", job_id, reason)``
    * ``("eval", job_id, model_id, matrix, params_enc, want_spans)`` —
      the extended form the pool sends — additionally piggybacks an
      *extras* dict on the reply (``("ok", job_id, result, extras)``):
      the worker's own metrics snapshot every
      :data:`_METRICS_PIGGYBACK_EVERY` replies (so the frontend can
      aggregate per-worker counters it otherwise cannot see), plus
      engine span timings when *want_spans* is non-zero — wall clock at
      level 1, wall clock + ``phase.*`` attribution deltas at level 2;
    * ``("load", model_id, document)`` → ``("loaded", model_id)``
    * ``("ping", token)`` → ``("pong", token)``
    * ``("crash",)`` → hard ``os._exit`` (fault-injection hook)
    * ``("stop",)`` → clean return
    """
    import time as _time

    from ..ir.passes import optimize_program
    from ..ir.program import lower
    from ..network import serialize
    from ..obs import profile as _profile
    from ..obs.metrics import METRICS as _worker_metrics
    from ..runtime.registry import ENGINES

    backends = ENGINES.serving_engines()
    evaluate = ENGINES.resolve(engine).evaluate
    warmups = {backend.key: 0 for backend in backends}

    def load(model_id: str, document: str):
        network = serialize.loads(document)
        if network.fingerprint() != model_id:
            raise ValueError(
                f"document fingerprint {network.fingerprint()[:12]} does not "
                f"match model id {model_id[:12]}"
            )
        program = lower(network)
        if optimize:
            program, _report = optimize_program(program)
        for backend in backends:
            backend.warm(program)
            warmups[backend.key] += 1
        return program
    programs = {mid: load(mid, doc) for mid, doc in documents.items()}
    # The compiled programs and warmed plans are immortal from here on;
    # freeze them out of the cyclic GC so steady-state eval batches never
    # pay a full collection that walks the model heap.
    import gc as _gc

    _gc.collect()
    _gc.freeze()
    conn.send(("ready", os.getpid(), sorted(programs), dict(warmups)))
    replies = 0

    def build_extras(want_spans: int, eval_s: "float | None", phases: dict) -> dict:
        extras: dict = {}
        if want_spans and eval_s is not None:
            extras["eval_s"] = eval_s
            if phases:
                extras["phases"] = phases
        if replies % _METRICS_PIGGYBACK_EVERY == 0:
            snapshot = _worker_metrics.snapshot()
            snapshot["pid"] = os.getpid()
            extras["metrics"] = snapshot
        return extras

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        op = message[0]
        if op == "eval":
            job_id, model_id, matrix, params_enc = message[1:5]
            # Legacy 5-tuple messages get the legacy 3-tuple reply;
            # the pool always sends the extended 6-tuple form.
            extended = len(message) > 5
            want_spans = int(message[5]) if extended else 0
            eval_s: "float | None" = None
            phases: dict[str, float] = {}
            try:
                program = programs.get(model_id)
                if program is None:
                    raise KeyError(f"model {model_id[:12]} not loaded")
                if want_spans >= 2:
                    # Sampled: run under the profiler for phase deltas.
                    before = dict(_worker_metrics._timer_totals)
                    started = _time.perf_counter()
                    with _profile.profiled():
                        result = evaluate(
                            program, matrix, params=_decode_params(params_enc)
                        )
                    eval_s = _time.perf_counter() - started
                    phases = {
                        name[len("phase."):]: total - before.get(name, 0.0)
                        for name, total in _worker_metrics._timer_totals.items()
                        if name.startswith("phase.")
                        and total - before.get(name, 0.0) > 0.0
                    }
                elif want_spans:
                    # Every traced batch: wall clock only (two reads).
                    started = _time.perf_counter()
                    result = evaluate(
                        program, matrix, params=_decode_params(params_enc)
                    )
                    eval_s = _time.perf_counter() - started
                else:
                    result = evaluate(
                        program, matrix, params=_decode_params(params_enc)
                    )
                reply: tuple = ("ok", job_id, result)
                if extended:
                    reply += (build_extras(want_spans, eval_s, phases),)
                conn.send(reply)
            except Exception as exc:  # noqa: BLE001 - reported to the parent
                reply = ("err", job_id, f"{type(exc).__name__}: {exc}")
                if extended:
                    reply += (build_extras(False, None, {}),)
                conn.send(reply)
            replies += 1
        elif op == "load":
            _op, model_id, document = message
            programs[model_id] = load(model_id, document)
            conn.send(("loaded", model_id, dict(warmups)))
        elif op == "ping":
            conn.send(("pong", message[1]))
        elif op == "crash":
            os._exit(3)
        elif op == "stop":
            conn.close()
            return
        else:
            conn.send(("err", None, f"unknown op {op!r}"))


# ---------------------------------------------------------------------------
# Process pool
# ---------------------------------------------------------------------------

@dataclass
class _WorkerHandle:
    slot: int
    process: "mp.process.BaseProcess"
    conn: "mp_connection.Connection"
    generation: int
    alive: bool = True
    jobs: dict[int, Job] = field(default_factory=dict)
    #: Per-engine plan warmup counts the worker reported at ready (and
    #: refreshes on every subsequent model load).
    warmups: dict[str, int] = field(default_factory=dict)
    #: The worker's most recent piggybacked metrics snapshot (may lag
    #: by up to :data:`_METRICS_PIGGYBACK_EVERY` replies).
    metrics: dict = field(default_factory=dict)

    @property
    def inflight(self) -> int:
        return len(self.jobs)


class ProcessWorkerPool:
    """Multiprocessing workers with least-loaded dispatch and restarts."""

    def __init__(
        self,
        documents: dict[str, str],
        *,
        n_workers: int = 2,
        optimize: bool = True,
        engine: str = "auto",
        max_restarts: int = 8,
        start_timeout: float = 60.0,
    ):
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        from ..runtime.registry import ENGINES

        # Resolve the policy once, in the parent: workers inherit the
        # pinned key so a restart can never flip engines mid-flight.
        self._documents = dict(documents)
        self._optimize = optimize
        self._engine = ENGINES.resolve(engine).key
        self._max_restarts = max_restarts
        self._start_timeout = start_timeout
        self._lock = threading.Lock()
        self._stopping = False
        self._restarts = 0
        self._ping_tokens = itertools.count(1)
        #: Outstanding warm-barrier pings: token -> (worker, event).
        self._pongs: dict[int, tuple[_WorkerHandle, threading.Event]] = {}
        # Prefer fork where available (fast, shares the warm parent
        # image); spawn elsewhere.  The worker body is a module-level
        # function, so both start methods work.
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
        self._workers: list[_WorkerHandle] = [
            self._spawn(slot, generation=0) for slot in range(n_workers)
        ]
        self._collector = threading.Thread(
            target=self._collect_loop, name="serve-pool-collector", daemon=True
        )
        self._collector.start()

    # -- lifecycle ------------------------------------------------------------
    def _spawn(self, slot: int, *, generation: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._documents, self._optimize, self._engine),
            name=f"serve-worker-{slot}.{generation}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(self._start_timeout):
            process.terminate()
            raise ServeError(
                E_WORKER, f"worker {slot} did not become ready in time"
            )
        message = parent_conn.recv()
        if message[0] != "ready":
            process.terminate()
            raise ServeError(
                E_WORKER, f"worker {slot} sent {message[0]!r} instead of ready"
            )
        return _WorkerHandle(
            slot=slot,
            process=process,
            conn=parent_conn,
            generation=generation,
            warmups=dict(message[3]) if len(message) > 3 else {},
        )

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop the collector and terminate every worker."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            workers = list(self._workers)
        self._wake()
        self._collector.join(timeout=timeout)
        for worker in workers:
            if worker.alive:
                try:
                    worker.conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
        for worker in workers:
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            worker.conn.close()

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"x")
        except (OSError, BrokenPipeError):
            pass

    # -- introspection --------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self._workers)

    @property
    def restarts(self) -> int:
        return self._restarts

    def alive_count(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers if w.alive)

    def inflight(self) -> int:
        with self._lock:
            return sum(w.inflight for w in self._workers)

    def loads(self) -> list[int]:
        """Per-slot in-flight batch counts (dispatch visibility)."""
        with self._lock:
            return [w.inflight if w.alive else -1 for w in self._workers]

    @property
    def engine(self) -> str:
        return self._engine

    def warmups(self) -> list[dict[str, int]]:
        """Per-slot plan warmup counts, keyed by engine (``int64``/``native``)."""
        with self._lock:
            return [dict(w.warmups) for w in self._workers]

    def worker_metrics(self) -> list[dict]:
        """Each worker's latest piggybacked metrics snapshot.

        One entry per slot that has reported at least once; snapshots
        may lag live state by up to :data:`_METRICS_PIGGYBACK_EVERY`
        eval replies.
        """
        with self._lock:
            return [dict(w.metrics) for w in self._workers if w.metrics]

    # -- dispatch -------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Send *job* to the least-loaded alive worker."""
        with self._lock:
            if self._stopping:
                raise ServeError(E_WORKER, "pool is shutting down")
            alive = [w for w in self._workers if w.alive]
            if not alive:
                raise ServeError(E_WORKER, "no alive workers")
            worker = min(alive, key=lambda w: w.inflight)
            worker.jobs[job.job_id] = job
            try:
                worker.conn.send(
                    (
                        "eval",
                        job.job_id,
                        job.model_id,
                        job.matrix,
                        job.params_enc,
                        job.want_spans,
                    )
                )
            except (OSError, BrokenPipeError):
                # The pipe died under us; the collector will reap the
                # worker, but this job must fail over immediately.
                del worker.jobs[job.job_id]
                worker.alive = False
                raise ServeError(E_WORKER, "worker pipe broken on submit")
        _obs_metrics.METRICS.inc("serve.pool.submits")

    def add_model(self, model_id: str, document: str) -> None:
        """Ship a newly registered model to every alive worker."""
        with self._lock:
            self._documents[model_id] = document
            for worker in self._workers:
                if worker.alive:
                    try:
                        worker.conn.send(("load", model_id, document))
                    except (OSError, BrokenPipeError):
                        worker.alive = False

    def wait_warm(self, timeout: float = 30.0) -> bool:
        """Barrier: every alive worker has drained its message backlog.

        Worker pipes are FIFO, so a ``pong`` proves the worker already
        processed every ``load`` sent before the ping — newly shipped
        models are rebuilt, verified, and engine-warmed.  The hot-swap
        promotion path calls this *before* flipping an alias, so the
        first admission routed to the new fingerprint never pays
        rebuild cost and can never race an unloaded model.  Returns
        ``False`` on timeout (a worker that died mid-barrier does not
        stall it: its replacement reloads every document before
        reporting ready, which preserves the warm guarantee).
        """
        events = []
        with self._lock:
            for worker in self._workers:
                if not worker.alive:
                    continue
                token = next(self._ping_tokens)
                event = threading.Event()
                self._pongs[token] = (worker, event)
                try:
                    worker.conn.send(("ping", token))
                except (OSError, BrokenPipeError):
                    worker.alive = False
                    del self._pongs[token]
                    continue
                events.append(event)
        deadline = monotonic() + timeout
        warm = True
        for event in events:
            if not event.wait(timeout=max(0.0, deadline - monotonic())):
                warm = False
        return warm

    def inject_crash(self, slot: int) -> None:
        """Make worker *slot* die abruptly (fault-injection hook)."""
        with self._lock:
            worker = self._workers[slot]
            if worker.alive:
                try:
                    worker.conn.send(("crash",))
                except (OSError, BrokenPipeError):
                    worker.alive = False

    # -- collector ------------------------------------------------------------
    def _collect_loop(self) -> None:
        while True:
            with self._lock:
                if self._stopping:
                    return
                watched = {w.conn: w for w in self._workers if w.alive}
            conns = list(watched) + [self._wake_r]
            for conn in mp_connection.wait(conns, timeout=0.25):
                if conn is self._wake_r:
                    try:
                        self._wake_r.recv()
                    except (EOFError, OSError):
                        pass
                    continue
                worker = watched[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._reap(worker)
                    continue
                self._deliver(worker, message)

    def _deliver(self, worker: _WorkerHandle, message: tuple) -> None:
        op = message[0]
        if op in ("ok", "err"):
            job_id, payload = message[1], message[2]
            extras = message[3] if len(message) > 3 else None
            with self._lock:
                job = worker.jobs.pop(job_id, None)
                if extras and "metrics" in extras:
                    worker.metrics = extras["metrics"]
            if job is None:
                return  # job already failed over after a crash race
            if extras and job.on_extras is not None:
                job.on_extras(extras)
            if op == "ok":
                job.on_done(payload)
            else:
                _obs_metrics.METRICS.inc("serve.worker.failures")
                job.on_fail(f"worker {worker.slot} error: {payload}")
        elif op == "loaded" and len(message) > 2:
            with self._lock:
                worker.warmups = dict(message[2])
        elif op == "pong":
            with self._lock:
                pending = self._pongs.pop(message[1], None)
            if pending is not None:
                pending[1].set()

    def _reap(self, worker: _WorkerHandle) -> None:
        """A worker pipe broke: fail its jobs over, then try to restart."""
        with self._lock:
            worker.alive = False
            orphans = list(worker.jobs.values())
            worker.jobs.clear()
            # Release warm-barrier waiters pinned on the dead worker: its
            # replacement reloads every document before reporting ready,
            # so the barrier's guarantee holds without the pong.
            for token in [
                t for t, (w, _) in self._pongs.items() if w is worker
            ]:
                self._pongs.pop(token)[1].set()
            can_restart = not self._stopping and self._restarts < self._max_restarts
        _obs_metrics.METRICS.inc("serve.worker.failures", len(orphans))
        _rtrace.FLIGHT.trip("worker-crash")
        worker.process.join(timeout=1.0)
        for job in orphans:
            job.on_fail(f"worker {worker.slot} crashed")
        if can_restart:
            try:
                replacement = self._spawn(
                    worker.slot, generation=worker.generation + 1
                )
            except ServeError:
                return
            with self._lock:
                if self._stopping:
                    replacement.conn.send(("stop",))
                    return
                self._workers[worker.slot] = replacement
                self._restarts += 1
            _obs_metrics.METRICS.inc("serve.worker.restarts")


# ---------------------------------------------------------------------------
# Inline pool
# ---------------------------------------------------------------------------

class InlineWorkerPool:
    """The pool interface executed synchronously in the calling thread.

    Used by unit tests (determinism, no fork) and by benchmark
    configurations that measure scheduling without process overhead.
    Loads from the same serialized documents as the process pool so the
    rebuild-verify-warm path stays covered in-process.
    """

    def __init__(
        self,
        documents: dict[str, str],
        *,
        optimize: bool = True,
        engine: str = "auto",
    ):
        from ..runtime.registry import ENGINES

        self._optimize = optimize
        self._backends = ENGINES.serving_engines()
        self._engine_impl = ENGINES.resolve(engine)
        self._engine = self._engine_impl.key
        self._programs = {}
        self._warmups = {backend.key: 0 for backend in self._backends}
        for model_id, document in documents.items():
            self.add_model(model_id, document)
        self._stopping = False
        self._restarts = 0

    @property
    def n_workers(self) -> int:
        return 1

    @property
    def restarts(self) -> int:
        return self._restarts

    def alive_count(self) -> int:
        return 0 if self._stopping else 1

    def inflight(self) -> int:
        return 0

    def loads(self) -> list[int]:
        return [0]

    @property
    def engine(self) -> str:
        return self._engine

    def warmups(self) -> list[dict[str, int]]:
        return [dict(self._warmups)]

    def worker_metrics(self) -> list[dict]:
        """Inline execution shares the frontend registry: nothing extra."""
        return []

    def submit(self, job: Job) -> None:
        import time as _time

        if self._stopping:
            raise ServeError(E_WORKER, "pool is shutting down")
        program = self._programs.get(job.model_id)
        if program is None:
            _obs_metrics.METRICS.inc("serve.worker.failures")
            job.on_fail(f"model {job.model_id[:12]} not loaded")
            return
        _obs_metrics.METRICS.inc("serve.pool.submits")
        evaluate = self._engine_impl.evaluate
        started = _time.perf_counter() if job.want_spans else 0.0
        try:
            result = evaluate(
                program, job.matrix, params=_decode_params(job.params_enc)
            )
        except Exception as exc:  # noqa: BLE001 - mapped to job failure
            _obs_metrics.METRICS.inc("serve.worker.failures")
            job.on_fail(f"{type(exc).__name__}: {exc}")
            return
        if job.want_spans and job.on_extras is not None:
            job.on_extras({"eval_s": _time.perf_counter() - started})
        job.on_done(result)

    def add_model(self, model_id: str, document: str) -> None:
        from ..ir.passes import optimize_program
        from ..ir.program import lower
        from ..network import serialize

        network = serialize.loads(document)
        program = lower(network)
        if self._optimize:
            program, _report = optimize_program(program)
        for backend in self._backends:
            backend.warm(program)
            self._warmups[backend.key] += 1
        self._programs[model_id] = program

    def wait_warm(self, timeout: float = 30.0) -> bool:
        """Loads are synchronous in-process: always already warm."""
        return True

    def inject_crash(self, slot: int) -> None:
        raise RuntimeError("inline pool has no crashable workers")

    def shutdown(self, timeout: float = 10.0) -> None:
        self._stopping = True
