"""EngineRegistry: one dispatch surface for every execution backend.

Registration order is semantic — it is the conformance report column
order and the preference order the ``auto`` serving policy walks (last
registered and available wins, so the native backend shadows the int64
fallback exactly when it can actually run).  Engines register by
factory, so every :meth:`EngineRegistry.create` hands out a fresh
instance and concurrent users never share mutable oracle state.

Selection never string-compares engine names outside this module: serve
pools, the conformance CLI, and ``python -m repro`` all resolve a policy
string (an engine ``name``, its short ``key`` alias, or ``"auto"``)
through :meth:`EngineRegistry.resolve` and then talk to the returned
:class:`~repro.runtime.engines.BackendEngine` object.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable
from typing import Optional

from .engines import (
    BackendEngine,
    CompiledBatchEngine,
    EventDrivenEngine,
    GRLCircuitEngine,
    InterpretedEngine,
    NativeEngine,
)

#: The serving selection policy: pick the best available batchable
#: engine (native when it can run here, compiled int64 otherwise).
AUTO = "auto"


class EngineRegistry:
    """Ordered backend factories plus capability-driven selection."""

    def __init__(self) -> None:
        self._factories: "OrderedDict[str, Callable[[], BackendEngine]]" = (
            OrderedDict()
        )
        self._aliases: dict[str, str] = {}

    # -- registration ---------------------------------------------------

    def register(
        self, factory: Callable[[], BackendEngine]
    ) -> Callable[[], BackendEngine]:
        """Register a backend factory (usable as a class decorator).

        The factory's product must carry a unique ``name``; its ``key``
        (when distinct) becomes an alias.  Registration order is
        preserved and becomes both the report column order and the
        ``auto`` preference order (reversed).
        """
        probe = factory()
        name = probe.name
        if name in self._factories or name in self._aliases:
            raise ValueError(f"oracle {name!r} already registered")
        key = getattr(probe, "key", name)
        if key != name:
            owner = self._aliases.get(key)
            if (owner is not None and owner != name) or key in self._factories:
                raise ValueError(
                    f"engine key {key!r} already taken by {owner or key!r}"
                )
        self._factories[name] = factory
        if key != name:
            self._aliases[key] = name
        return factory

    # -- lookup ---------------------------------------------------------

    def names(self) -> list[str]:
        """Registered engine names, in registration order."""
        return list(self._factories)

    def canonical(self, name: str) -> str:
        """Resolve a name or key alias to the registered engine name."""
        if name in self._factories:
            return name
        target = self._aliases.get(name)
        if target is None:
            known = ", ".join(
                sorted(set(self._factories) | set(self._aliases))
            )
            raise ValueError(
                f"unknown engine {name!r}; known engines: {known} "
                f"(or the {AUTO!r} policy)"
            )
        return target

    def create(self, name: str) -> BackendEngine:
        """A fresh instance of the named (or aliased) engine."""
        return self._factories[self.canonical(name)]()

    def create_all(
        self, *, include_cycle_accurate: bool = True
    ) -> list[BackendEngine]:
        """Fresh instances of every engine, registration order.

        ``include_cycle_accurate=False`` drops gate-level models (the
        capability behind the historical ``include_grl`` toggle).
        """
        engines = [factory() for factory in self._factories.values()]
        if not include_cycle_accurate:
            engines = [
                e for e in engines if not e.capabilities.cycle_accurate
            ]
        return engines

    # -- serving selection ----------------------------------------------

    def serving_engines(self) -> list[BackendEngine]:
        """Fresh instances of every batchable engine, registration order."""
        return [
            engine
            for engine in (f() for f in self._factories.values())
            if engine.capabilities.batchable
        ]

    def serving_keys(self) -> list[str]:
        """Short keys of the batchable engines (CLI ``--engine`` choices)."""
        return [engine.key for engine in self.serving_engines()]

    def resolve(
        self, policy: str = AUTO, *, batch_size: Optional[int] = None
    ) -> BackendEngine:
        """The batchable engine *policy* selects in this process.

        ``auto`` walks the batchable engines in reverse registration
        order and returns the first that is available and admits
        *batch_size* — i.e. native when it can run here, the compiled
        int64 engine otherwise.  An explicit name or key pins one engine
        and raises :class:`ValueError` when it is not batchable or not
        available.
        """
        if policy == AUTO:
            candidates = self.serving_engines()
            for engine in reversed(candidates):
                if engine.available() is not None:
                    continue
                cap = engine.capabilities.max_batch
                if batch_size is not None and cap is not None and batch_size > cap:
                    continue
                return engine
            raise ValueError(
                "no batchable engine is available for the 'auto' policy"
            )
        engine = self.create(policy)
        if not engine.capabilities.batchable:
            raise ValueError(
                f"engine {engine.name!r} is not batchable; serving engines: "
                + ", ".join(self.serving_keys())
            )
        reason = engine.available()
        if reason is not None:
            raise ValueError(f"engine {engine.name!r} unavailable: {reason}")
        return engine

    def describe(self) -> list[dict]:
        """Capability records for every engine (CLI ``runtime`` listing)."""
        return [factory().describe() for factory in self._factories.values()]


#: The process-wide registry, pre-loaded with the five stock backends.
ENGINES = EngineRegistry()
for _factory in (
    InterpretedEngine,
    CompiledBatchEngine,
    EventDrivenEngine,
    GRLCircuitEngine,
    NativeEngine,
):
    ENGINES.register(_factory)
del _factory
