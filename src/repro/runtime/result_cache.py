"""Bounded ``(program fingerprint, volley digest) → output row`` cache.

The serving stack answers many *identical* requests — loadgen replays,
retried clients, periodic health volleys — and every one of them used to
ride the full batcher → worker-pool → decode path.  :class:`ResultCache`
memoizes finished rows keyed by the model's program fingerprint plus a
canonical digest of the encoded volley and parameter binding, so
:class:`~repro.serve.service.TNNService` can resolve a repeat *ahead of
admission*: no queue slot, no dispatch, no worker round-trip.

Correctness hinges on the key being total over everything that affects
the answer: the fingerprint pins the program (structure + weights), the
digest pins the sentinel-int64 input row *and* the canonical params JSON.
Anything else (deadline, trace flags) only affects scheduling, never the
row, so cached answers are byte-identical to recomputation — a property
the served conformance harness checks, including against deliberate
corruption via :meth:`ResultCache.poison`.

Light by design (stdlib + numpy + obs.metrics) so the service layer can
import it without pulling in the engine registry.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Optional

import numpy as np

from ..core.value import INF, Infinity
from ..obs import metrics as _obs_metrics

_UNSET = object()

#: Flat per-entry overhead (keys, OrderedDict slot, tuple header).
_ENTRY_OVERHEAD = 96


def volley_digest(encoded: Any, params_key: str = "") -> str:
    """Canonical digest of one encoded volley + parameter binding.

    *encoded* is sentinel-int64 data — one request row or a ``(B, n)``
    matrix — canonicalized to C-contiguous int64 bytes.  The shape is
    folded in so an empty row and an empty matrix cannot collide, and
    *params_key* (the service's canonical params JSON) rides behind a
    separator byte.
    """
    matrix = np.ascontiguousarray(np.asarray(encoded, dtype=np.int64))
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr(matrix.shape).encode("ascii"))
    digest.update(matrix.tobytes())
    digest.update(b"|")
    digest.update(params_key.encode("utf-8"))
    return digest.hexdigest()


def _row_nbytes(row: Any) -> int:
    """Approximate resident bytes of one cached output row."""
    if isinstance(row, (tuple, list)):
        return _ENTRY_OVERHEAD + 16 * len(row)
    nbytes = getattr(row, "nbytes", None)
    if isinstance(nbytes, int):
        return _ENTRY_OVERHEAD + nbytes
    return _ENTRY_OVERHEAD


class ResultCache:
    """LRU over finished output rows with entry and byte bounds.

    Metrics: ``result_cache.hit`` / ``result_cache.miss`` /
    ``result_cache.evict`` (and ``result_cache.poisoned`` when the fault
    harness corrupts a row on purpose).  Thread-safe; shared process-wide
    as :data:`RESULT_CACHE`.
    """

    def __init__(
        self,
        *,
        max_entries: Optional[int] = 4096,
        max_bytes: Optional[int] = 32 << 20,
    ) -> None:
        self._lock = threading.RLock()
        self._entries: "OrderedDict[tuple[str, str], Any]" = OrderedDict()
        self._nbytes = 0
        self._max_entries = max_entries
        self._max_bytes = max_bytes

    # -- lookup / insert ------------------------------------------------

    def get(self, fingerprint: str, digest: str) -> Optional[Any]:
        with self._lock:
            key = (fingerprint, digest)
            row = self._entries.get(key)
            if row is None:
                _obs_metrics.METRICS.inc("result_cache.miss")
                return None
            self._entries.move_to_end(key)
            _obs_metrics.METRICS.inc("result_cache.hit")
            return row

    def put(self, fingerprint: str, digest: str, row: Any) -> None:
        with self._lock:
            key = (fingerprint, digest)
            old = self._entries.pop(key, None)
            if old is not None:
                self._nbytes -= _row_nbytes(old)
            self._entries[key] = row
            self._nbytes += _row_nbytes(row)
            while self._entries and (
                (
                    self._max_entries is not None
                    and len(self._entries) > self._max_entries
                )
                or (
                    self._max_bytes is not None
                    and self._nbytes > self._max_bytes
                )
            ):
                _, evicted = self._entries.popitem(last=False)
                self._nbytes -= _row_nbytes(evicted)
                _obs_metrics.METRICS.inc("result_cache.evict")

    def evict_fingerprint(self, fingerprint: str) -> int:
        """Drop every cached row of one model; returns the count.

        Called when a model is retired from the serving registry
        (removal, or hot-swap promotion that supersedes it): a retired
        fingerprint's rows must never be served again, and keeping them
        would let a later re-registration of the same structure start
        from rows the operator believed gone.  Counted separately from
        capacity eviction as ``result_cache.evict.retired``.
        """
        with self._lock:
            keys = [key for key in self._entries if key[0] == fingerprint]
            for key in keys:
                row = self._entries.pop(key)
                self._nbytes -= _row_nbytes(row)
            if keys:
                _obs_metrics.METRICS.inc(
                    "result_cache.evict.retired", len(keys)
                )
            return len(keys)

    # -- fault injection ------------------------------------------------

    def poison(self) -> Optional[tuple[str, str]]:
        """Corrupt one cached row in place (serving-fault injection).

        Flips the first scalar of the most recently used tuple row —
        finite times bump by one, ``INF`` collapses to ``0`` — and
        returns the corrupted ``(fingerprint, digest)`` key, or ``None``
        when nothing corruptible is cached.  The served byte-check
        harness must flag the poisoned answer as a mismatch; a harness
        that cannot see this would also miss a genuinely buggy cache.
        """
        with self._lock:
            for key in reversed(self._entries):
                row = self._entries[key]
                if not isinstance(row, tuple) or not row:
                    continue
                head = row[0]
                bad = 0 if isinstance(head, Infinity) or head is INF else head + 1
                self._entries[key] = (bad,) + row[1:]
                _obs_metrics.METRICS.inc("result_cache.poisoned")
                return key
            return None

    # -- knobs / introspection ------------------------------------------

    def configure(
        self, *, max_entries: Any = _UNSET, max_bytes: Any = _UNSET
    ) -> tuple[Optional[int], Optional[int]]:
        """Rebound the cache; returns the previous bounds pair."""
        with self._lock:
            previous = (self._max_entries, self._max_bytes)
            if max_entries is not _UNSET:
                if max_entries is not None and max_entries < 1:
                    raise ValueError(
                        f"cache limit must be >= 1, got {max_entries}"
                    )
                self._max_entries = max_entries
            if max_bytes is not _UNSET:
                if max_bytes is not None and max_bytes < 1:
                    raise ValueError(f"cache limit must be >= 1, got {max_bytes}")
                self._max_bytes = max_bytes
            while self._entries and (
                (
                    self._max_entries is not None
                    and len(self._entries) > self._max_entries
                )
                or (
                    self._max_bytes is not None
                    and self._nbytes > self._max_bytes
                )
            ):
                _, evicted = self._entries.popitem(last=False)
                self._nbytes -= _row_nbytes(evicted)
                _obs_metrics.METRICS.inc("result_cache.evict")
            return previous

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._nbytes = 0
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def info(self) -> dict:
        counter = _obs_metrics.METRICS.counter
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._nbytes,
                "max_entries": self._max_entries,
                "max_bytes": self._max_bytes,
                "hits": counter("result_cache.hit"),
                "misses": counter("result_cache.miss"),
                "evictions": counter("result_cache.evict"),
                "retired": counter("result_cache.evict.retired"),
            }


#: The process-wide result cache the serving stack consults.
RESULT_CACHE = ResultCache()
