"""One plan-cache tier shared by every execution engine.

Before PR 9 each batchable backend kept its own bounded LRU
(``compile_plan._PLAN_LRU`` for the int64 engine,
``native.plan._NATIVE_LRU`` for the native engine) with duplicated
eviction logic and split stats surfaces.  :class:`PlanCacheTier` folds
them into one fingerprint-keyed store:

* Every engine registers a **namespace** carrying its legacy metric
  prefix (``plan_cache`` / ``native_plan_cache`` — the counter names are
  load-bearing for dashboards and tests) and a per-namespace entry cap
  that behaves exactly like the old per-engine LRU limit.
* The tier additionally enforces one **global budget** — max entries
  and/or max resident bytes across *all* namespaces — with LRU eviction
  in global recency order.  Byte sizes come from :func:`plan_nbytes`,
  a conservative walker over the plan's ndarray payloads.
* Engine modules keep their ``WeakKeyDictionary`` identity memos in
  front of the tier: identity hits never reach here, so the
  ``*.hit.identity`` counters stay owned by the engines.

The module is deliberately light (stdlib + obs.metrics only) so
low-level compilers can import it without touching the engine registry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

from ..obs import metrics as _obs_metrics

#: Sentinel for "leave this knob unchanged" in keyword setters, where
#: ``None`` is a meaningful value (= unlimited).
_UNSET = object()

#: Flat per-entry overhead charged on top of the walked payload bytes
#: (dict slots, key strings, bookkeeping).
_ENTRY_OVERHEAD = 64


def plan_nbytes(value: Any) -> int:
    """Estimated resident bytes of one cached plan.

    Recursively sums ``ndarray.nbytes`` over the object graph (dicts,
    sequences, instance ``__dict__``s), deduplicating shared arrays by
    identity.  Scalars and strings are ignored — plans are array-heavy,
    and the budget only needs to be honest about the big allocations.
    """
    seen: set[int] = set()

    def walk(obj: Any) -> int:
        if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
            return 0
        oid = id(obj)
        if oid in seen:
            return 0
        seen.add(oid)
        nbytes = getattr(obj, "nbytes", None)
        if isinstance(nbytes, int) and hasattr(obj, "dtype"):
            return nbytes
        if isinstance(obj, dict):
            return sum(walk(v) for v in obj.values())
        if isinstance(obj, (list, tuple, set, frozenset)):
            return sum(walk(v) for v in obj)
        attrs = getattr(obj, "__dict__", None)
        if attrs is not None:
            return sum(walk(v) for v in attrs.values())
        return 0

    return _ENTRY_OVERHEAD + walk(value)


@dataclass
class _Namespace:
    """Per-engine bookkeeping: metric prefix, entry cap, occupancy."""

    name: str
    metric_prefix: str
    limit: int = 128
    entries: int = 0
    nbytes: int = 0


@dataclass
class _Entry:
    value: Any
    nbytes: int


class PlanCacheTier:
    """Fingerprint-keyed plan storage with namespaces and one budget.

    Keys are ``(namespace, fingerprint)``; recency is **global** — a hit
    in any namespace refreshes the entry against both its namespace cap
    and the tier-wide budget.  All operations are thread-safe (serving
    workers and the batcher thread compile concurrently).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._entries: "OrderedDict[tuple[str, str], _Entry]" = OrderedDict()
        self._namespaces: dict[str, _Namespace] = {}
        self._max_entries: Optional[int] = None
        self._max_bytes: Optional[int] = None

    # -- namespaces -----------------------------------------------------

    def register_namespace(
        self, name: str, *, metric_prefix: str, limit: int = 128
    ) -> None:
        """Declare an engine namespace (idempotent across reimports)."""
        with self._lock:
            if name in self._namespaces:
                return
            self._namespaces[name] = _Namespace(
                name=name, metric_prefix=metric_prefix, limit=limit
            )

    def _ns(self, name: str) -> _Namespace:
        ns = self._namespaces.get(name)
        if ns is None:
            raise KeyError(f"unregistered plan-cache namespace {name!r}")
        return ns

    def namespaces(self) -> list[str]:
        with self._lock:
            return list(self._namespaces)

    # -- lookup / insert ------------------------------------------------

    def get(self, namespace: str, fingerprint: str) -> Optional[Any]:
        """The cached plan, counting ``<prefix>.hit.structural``/``.miss``."""
        ns = self._ns(namespace)
        with self._lock:
            entry = self._entries.get((namespace, fingerprint))
            if entry is None:
                _obs_metrics.METRICS.inc(f"{ns.metric_prefix}.miss")
                return None
            self._entries.move_to_end((namespace, fingerprint))
            _obs_metrics.METRICS.inc(f"{ns.metric_prefix}.hit.structural")
            return entry.value

    def put(
        self,
        namespace: str,
        fingerprint: str,
        value: Any,
        *,
        nbytes: Optional[int] = None,
    ) -> Any:
        """Insert (or refresh) a plan, then enforce caps and budgets."""
        ns = self._ns(namespace)
        size = plan_nbytes(value) if nbytes is None else int(nbytes)
        with self._lock:
            key = (namespace, fingerprint)
            old = self._entries.pop(key, None)
            if old is not None:
                ns.entries -= 1
                ns.nbytes -= old.nbytes
            self._entries[key] = _Entry(value=value, nbytes=size)
            ns.entries += 1
            ns.nbytes += size
            self._enforce(ns)
        return value

    # -- eviction -------------------------------------------------------

    def _evict(self, key: tuple[str, str]) -> None:
        # Lock held.  The evict counter uses the *evicted* entry's own
        # namespace prefix, so global-budget pressure is attributed to
        # whichever engine's plan actually left the cache.
        entry = self._entries.pop(key)
        ns = self._namespaces[key[0]]
        ns.entries -= 1
        ns.nbytes -= entry.nbytes
        _obs_metrics.METRICS.inc(f"{ns.metric_prefix}.evict")

    def _enforce(self, ns: Optional[_Namespace] = None) -> None:
        # Lock held.  Namespace cap first (legacy LRU semantics), then
        # the global entry/byte budgets in global recency order.
        if ns is not None:
            while ns.entries > ns.limit:
                self._evict(next(k for k in self._entries if k[0] == ns.name))
        while (
            self._max_entries is not None
            and len(self._entries) > self._max_entries
        ):
            self._evict(next(iter(self._entries)))
        while (
            self._max_bytes is not None
            and self._entries
            and sum(n.nbytes for n in self._namespaces.values()) > self._max_bytes
        ):
            self._evict(next(iter(self._entries)))

    def evict_fingerprint(self, fingerprint: str) -> int:
        """Drop one model's plan from every namespace; returns the count.

        The retirement twin of capacity eviction: when a model leaves
        the serving registry its compiled plans are dead weight in every
        engine's namespace at once.  Counted per namespace as
        ``<prefix>.evict.retired`` (distinct from ``.evict``, which
        dashboards read as capacity pressure).
        """
        with self._lock:
            keys = [key for key in self._entries if key[1] == fingerprint]
            for key in keys:
                entry = self._entries.pop(key)
                ns = self._namespaces[key[0]]
                ns.entries -= 1
                ns.nbytes -= entry.nbytes
                _obs_metrics.METRICS.inc(f"{ns.metric_prefix}.evict.retired")
            return len(keys)

    # -- knobs ----------------------------------------------------------

    def set_namespace_limit(self, namespace: str, limit: int) -> int:
        """Resize one namespace's entry cap, trimming immediately.

        Returns the previous cap (the legacy ``set_plan_cache_limit``
        contract, so shims can forward without translation).
        """
        if limit < 1:
            raise ValueError(f"cache limit must be >= 1, got {limit}")
        ns = self._ns(namespace)
        with self._lock:
            previous = ns.limit
            ns.limit = int(limit)
            self._enforce(ns)
            return previous

    def set_budget(
        self, *, max_entries: Any = _UNSET, max_bytes: Any = _UNSET
    ) -> tuple[Optional[int], Optional[int]]:
        """Set the tier-wide budget; ``None`` lifts a bound.

        Returns the previous ``(max_entries, max_bytes)`` pair.  Passing
        only one keyword leaves the other bound untouched.
        """
        with self._lock:
            previous = (self._max_entries, self._max_bytes)
            if max_entries is not _UNSET:
                if max_entries is not None and max_entries < 1:
                    raise ValueError(
                        f"cache limit must be >= 1, got {max_entries}"
                    )
                self._max_entries = max_entries
            if max_bytes is not _UNSET:
                if max_bytes is not None and max_bytes < 1:
                    raise ValueError(f"cache limit must be >= 1, got {max_bytes}")
                self._max_bytes = max_bytes
            self._enforce()
            return previous

    def clear(self, namespace: Optional[str] = None) -> int:
        """Drop every entry (or one namespace's); returns the count.

        Clearing is not eviction: no ``.evict`` counters fire, matching
        the legacy ``clear_plan_cache`` behaviour.
        """
        with self._lock:
            if namespace is None:
                dropped = len(self._entries)
                self._entries.clear()
                for ns in self._namespaces.values():
                    ns.entries = ns.nbytes = 0
                return dropped
            ns = self._ns(namespace)
            keys = [k for k in self._entries if k[0] == namespace]
            for key in keys:
                entry = self._entries.pop(key)
                ns.entries -= 1
                ns.nbytes -= entry.nbytes
            return len(keys)

    # -- introspection --------------------------------------------------

    def namespace_info(self, namespace: str) -> dict:
        """Occupancy + counters for one namespace (legacy-shape feeder)."""
        ns = self._ns(namespace)
        counter = _obs_metrics.METRICS.counter
        with self._lock:
            return {
                "entries": ns.entries,
                "bytes": ns.nbytes,
                "limit": ns.limit,
                "hits_structural": counter(f"{ns.metric_prefix}.hit.structural"),
                "misses": counter(f"{ns.metric_prefix}.miss"),
                "evictions": counter(f"{ns.metric_prefix}.evict"),
                "retired": counter(f"{ns.metric_prefix}.evict.retired"),
            }

    def info(self) -> dict:
        """The whole tier: totals, budget, and every namespace."""
        with self._lock:
            namespaces = {
                name: self.namespace_info(name) for name in self._namespaces
            }
            return {
                "entries": len(self._entries),
                "bytes": sum(ns.nbytes for ns in self._namespaces.values()),
                "budget": {
                    "max_entries": self._max_entries,
                    "max_bytes": self._max_bytes,
                },
                "namespaces": namespaces,
            }


#: The process-wide tier every engine compiles through.
PLAN_CACHE = PlanCacheTier()
