"""The Engine contract and the five stock backends behind it.

The paper's central claim is that one s-t algebra admits many
interchangeable implementations; the repo carries five — the interpreted
big-int walk, the compiled int64 batch engine, the event-driven
simulator, the gate-level GRL circuit model, and the native arena
backend.  Before PR 9 they lived in ``repro.testing.oracles`` as
conformance fixtures while the serving stack re-selected them by string
compare (``if engine == "native"``).  This module makes the backend the
first-class object: every implementation is a :class:`BackendEngine`
carrying

* ``name`` — the registry/report label (``"compiled-batch"``, …),
* ``key`` — the short serving key (``"int64"``, ``"native"``) that the
  CLI ``--engine`` flags and worker warmup ledgers use,
* ``capabilities`` — a static :class:`EngineCapabilities` descriptor
  (batchable? max batch? zero-source constants? trace replay?
  cycle-accurate?) that replaces name-based special-casing, and
* ``available()`` — a runtime probe (``None`` = usable here, else the
  reason), which the ``auto`` selection policy consults.

Batchable engines additionally expose the serving surface —
``evaluate(program, matrix)`` over sentinel-int64 batches and
``warm(program)`` precompilation — so worker processes dispatch through
the same objects the conformance harness diffs.
:mod:`repro.testing.oracles` re-exports these classes under their
historical ``*Oracle`` names.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import asdict, dataclass
from typing import Any, Optional, Protocol, runtime_checkable

from ..core.value import Infinity, Time
from ..ir.program import ProgramLike, ensure_program
from ..native import (
    NUMBA_AVAILABLE,
    compile_native,
    evaluate_batch_native,
    native_mode,
)
from ..network.compile_plan import compile_plan, evaluate_batch
from ..network.events import EventSimulator
from ..network.simulator import evaluate_all_interpreted
from ..obs.trace import RecordingSink, TraceEvent

Volley = tuple[Time, ...]
Outputs = tuple[Time, ...]


@runtime_checkable
class Engine(Protocol):
    """The structural contract every backend engine satisfies.

    One executable semantics of the s-t language, consuming a
    :data:`~repro.ir.program.ProgramLike` (a ``Network`` or a lowered
    ``Program``) — the dispatch surface the conformance harness and the
    serving stack are written against.
    """

    name: str

    def supports_network(self, network: ProgramLike) -> Optional[str]:
        """``None`` if the engine can run *network*, else a skip reason."""
        ...

    def supports_volley(self, volley: Volley) -> bool:
        """True if the engine can run this particular volley."""
        ...

    def run(
        self,
        network: ProgramLike,
        volleys: Sequence[Volley],
        params: Optional[Mapping[str, Time]] = None,
    ) -> list[Outputs]:
        """Raw output tuples (output-name order) per volley."""
        ...

    def trace(
        self,
        network: ProgramLike,
        volley: Volley,
        params: Optional[Mapping[str, Time]] = None,
    ) -> Optional[list[TraceEvent]]:
        """Canonical spike trace of one volley, or ``None`` if untraceable."""
        ...


@dataclass(frozen=True)
class EngineCapabilities:
    """What one backend can do, declared statically.

    The registry and serving stack branch on these fields instead of on
    engine names: ``auto`` selection wants ``batchable`` + availability,
    conformance filters the slow gate-level model via ``cycle_accurate``,
    and skip reporting leans on ``supports_zero_source_const``.
    """

    #: Accepts whole sentinel-int64 volley matrices via ``evaluate``.
    batchable: bool = False
    #: Largest batch ``evaluate`` accepts (``None`` = unbounded).
    max_batch: Optional[int] = None
    #: Can realize zero-source min/max lattice constants.
    supports_zero_source_const: bool = True
    #: Can replay a served request from its recorded trace row.
    supports_trace_replay: bool = False
    #: Simulates gate-by-gate cycles (orders of magnitude slower).
    cycle_accurate: bool = False


class BackendEngine:
    """One executable semantics of the network language.

    The stock implementation of the :class:`Engine` protocol (the class
    conformance code historically imported as ``BackendOracle``).
    Subclasses implement :meth:`run`; partial backends override
    :meth:`supports_network` / :meth:`supports_volley`; batchable
    backends override :meth:`evaluate` / :meth:`warm`.  ``run`` returns
    *raw* outputs — canonicalization (sentinel saturation) is applied
    uniformly by the harness, never per backend.
    """

    #: Registry key and report label; subclasses must override.
    name: str = "abstract"
    #: Short serving key (CLI flags, warmup ledgers); defaults to name.
    key: str = "abstract"
    #: Static capability descriptor; subclasses override as needed.
    capabilities: EngineCapabilities = EngineCapabilities()

    def available(self) -> Optional[str]:
        """``None`` when the engine can run in this process, else why not."""
        return None

    def supports_network(self, network: ProgramLike) -> Optional[str]:
        """``None`` if the backend can run *network*, else a skip reason."""
        return None

    def supports_volley(self, volley: Volley) -> bool:
        """True if the backend can run this particular volley."""
        return True

    def run(
        self,
        network: ProgramLike,
        volleys: Sequence[Volley],
        params: Optional[Mapping[str, Time]] = None,
    ) -> list[Outputs]:
        """Raw output tuples (``network.output_names`` order) per volley."""
        raise NotImplementedError

    def trace(
        self,
        network: ProgramLike,
        volley: Volley,
        params: Optional[Mapping[str, Time]] = None,
    ) -> Optional[list[TraceEvent]]:
        """The canonical spike trace of one volley, or ``None``.

        ``None`` means the backend cannot trace this case (unsupported
        network/volley, or no tracing support at all — the base).  A
        returned trace is already canonical (sorted, sentinel-saturated),
        so two backends that agree on fire times return *equal* lists.
        """
        return None

    # -- batch serving surface ------------------------------------------

    def evaluate(
        self,
        network: ProgramLike,
        inputs: Any,
        *,
        params: Optional[Mapping[str, Time]] = None,
        sink: Any = None,
    ) -> Any:
        """Evaluate a sentinel-int64 batch (batchable engines only)."""
        raise NotImplementedError(f"engine {self.name!r} is not batchable")

    def warm(self, network: ProgramLike) -> None:
        """Precompile *network* so first real traffic pays nothing."""
        return None

    def describe(self) -> dict:
        """A JSON-able capability record for CLI/registry listings."""
        return {
            "name": self.name,
            "key": self.key,
            "available": self.available(),
            "capabilities": asdict(self.capabilities),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<oracle {self.name}>"


# ---------------------------------------------------------------------------
# The five stock backends
# ---------------------------------------------------------------------------

class InterpretedEngine(BackendEngine):
    """The pure-Python reference walk (arbitrary-precision ints)."""

    name = "interpreted"
    key = "interpreted"

    def run(self, network, volleys, params=None):
        names = network.input_names
        out_ids = list(network.outputs.values())
        results: list[Outputs] = []
        for volley in volleys:
            values = evaluate_all_interpreted(
                network, dict(zip(names, volley)), params=params
            )
            results.append(tuple(values[nid] for nid in out_ids))
        return results

    def trace(self, network, volley, params=None):
        sink = RecordingSink()
        evaluate_all_interpreted(
            network,
            dict(zip(network.input_names, volley)),
            params=params,
            sink=sink,
        )
        return sink.canonical()


class CompiledBatchEngine(BackendEngine):
    """The level-fused int64 batch engine, one compiled call per batch."""

    name = "compiled-batch"
    key = "int64"
    capabilities = EngineCapabilities(batchable=True)

    def run(self, network, volleys, params=None):
        from ..network.compile_plan import decode_matrix

        matrix = evaluate_batch(network, list(volleys), params=params)
        return [tuple(row) for row in decode_matrix(matrix)]

    def trace(self, network, volley, params=None):
        sink = RecordingSink()
        evaluate_batch(network, [tuple(volley)], params=params, sink=sink)
        return sink.canonical()

    def evaluate(self, network, inputs, *, params=None, sink=None):
        return evaluate_batch(network, inputs, params=params, sink=sink)

    def warm(self, network):
        compile_plan(network).warm()


class EventDrivenEngine(BackendEngine):
    """The operational simulator: spikes as discrete scheduled events."""

    name = "event-driven"
    key = "event"

    def run(self, network, volleys, params=None):
        simulator = EventSimulator(network)
        names = network.input_names
        out_names = network.output_names
        results: list[Outputs] = []
        for volley in volleys:
            outcome = simulator.run(dict(zip(names, volley)), params=params)
            results.append(tuple(outcome.outputs[n] for n in out_names))
        return results

    def trace(self, network, volley, params=None):
        sink = RecordingSink()
        EventSimulator(network).run(
            dict(zip(network.input_names, volley)), params=params, sink=sink
        )
        return sink.canonical()


class GRLCircuitEngine(BackendEngine):
    """The cycle-accurate CMOS model, where a gate netlist exists.

    Partial on two axes: zero-source min/max constants have no gate
    realization, and simulation cost is ``O(cycles × gates)`` with
    ``cycles ≈ latest finite spike + flip-flop count``, so both the
    netlist size and the volley's latest spike are budgeted.
    """

    name = "grl-circuit"
    key = "grl"
    capabilities = EngineCapabilities(
        supports_zero_source_const=False, cycle_accurate=True
    )

    def __init__(self, *, max_time: int = 32, max_gates: int = 400):
        self.max_time = max_time
        self.max_gates = max_gates

    def supports_network(self, network: ProgramLike) -> Optional[str]:
        program = ensure_program(network)
        if program.const_ids:
            # The IR declares which nodes are lattice-identity constants;
            # this oracle no longer pattern-matches them itself.
            node = program.nodes[program.const_ids[0]]
            return (
                f"zero-source {node.kind} (node {node.id}) has no "
                "CMOS gate realization"
            )
        # DFF chains dominate the netlist: one flip-flop per inc unit.
        gates = len(program.nodes) + sum(
            n.amount - 1 for n in program.nodes if n.kind == "inc"
        )
        if gates > self.max_gates:
            return f"netlist too large for cycle simulation ({gates} gates)"
        return None

    def supports_volley(self, volley: Volley) -> bool:
        return all(
            isinstance(v, Infinity) or v <= self.max_time for v in volley
        )

    def run(self, network, volleys, params=None):
        from ..racelogic.compile import GRLExecutor

        executor = GRLExecutor(network)
        names = network.input_names
        out_names = network.output_names
        results: list[Outputs] = []
        for volley in volleys:
            outputs = executor.outputs(
                dict(zip(names, volley)), params=params
            )
            results.append(tuple(outputs[n] for n in out_names))
        return results

    def trace(self, network, volley, params=None):
        from ..racelogic.compile import GRLExecutor

        volley = tuple(volley)
        if self.supports_network(network) is not None:
            return None
        if not self.supports_volley(volley):
            return None
        sink = RecordingSink()
        GRLExecutor(network).run(
            dict(zip(network.input_names, volley)), params=params, sink=sink
        )
        return sink.canonical()


class NativeEngine(BackendEngine):
    """The native arena backend: fused level-kernels, optional Numba JIT.

    Execution strategy (fused NumPy vs the Numba row interpreter)
    follows ``REPRO_NATIVE`` at run time, so one conformance invocation
    pins down whichever mode the environment selects — CI runs both.
    Traces are emitted post-hoc from the complete value vector, which is
    byte-identical to the incremental backends because the canonical
    trace is a pure function of fire times.
    """

    name = "native"
    key = "native"
    capabilities = EngineCapabilities(batchable=True, supports_trace_replay=True)

    def run(self, network, volleys, params=None):
        from ..network.compile_plan import decode_matrix

        matrix = evaluate_batch_native(network, list(volleys), params=params)
        return [tuple(row) for row in decode_matrix(matrix)]

    def trace(self, network, volley, params=None):
        sink = RecordingSink()
        evaluate_batch_native(
            network, [tuple(volley)], params=params, sink=sink
        )
        return sink.canonical()

    def evaluate(self, network, inputs, *, params=None, sink=None):
        return evaluate_batch_native(network, inputs, params=params, sink=sink)

    def warm(self, network):
        compile_native(network).warm()

    def describe(self) -> dict:
        record = super().describe()
        record["mode"] = native_mode()
        record["numba_available"] = NUMBA_AVAILABLE
        return record
