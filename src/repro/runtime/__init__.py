"""The unified execution runtime: engine registry plus cache tiers.

One seam for every layer (DESIGN.md §14).  The pieces:

* :data:`ENGINES` / :class:`EngineRegistry` — all five backends
  registered as :class:`~repro.runtime.engines.BackendEngine`
  implementations with capability descriptors and an ``auto`` selection
  policy; serve pools, conformance, and the CLI dispatch through it.
* :data:`PLAN_CACHE` — the fingerprint-keyed plan-cache tier with
  per-engine namespaces, byte accounting, and one LRU budget (the old
  per-engine LRUs in ``compile_plan`` and ``native.plan`` now live
  here).
* :data:`RESULT_CACHE` — the bounded ``(fingerprint, volley digest) →
  output row`` cache the serving stack consults ahead of admission.
* :func:`cache_info` — the single cache-stats surface subsuming the
  deprecated ``plan_cache_info()`` / ``native_plan_cache_info()`` pair.

Import-weight discipline: importing ``repro.runtime`` loads only the
cache tiers (stdlib + numpy), so low-level compilers can store plans
through the tier without cycles.  The registry — which imports every
backend — materializes lazily on first attribute access.
"""

from __future__ import annotations

from typing import Any

from .cache import PLAN_CACHE, PlanCacheTier, plan_nbytes
from .result_cache import RESULT_CACHE, ResultCache, volley_digest

__all__ = [
    "AUTO",
    "BackendEngine",
    "ENGINES",
    "Engine",
    "EngineCapabilities",
    "EngineRegistry",
    "PLAN_CACHE",
    "PlanCacheTier",
    "RESULT_CACHE",
    "ResultCache",
    "cache_info",
    "clear_caches",
    "evict_fingerprint",
    "legacy_plan_cache_info",
    "plan_nbytes",
    "volley_digest",
]

#: Attributes resolved on demand to keep this package import-light.
_LAZY = {
    "AUTO": ("registry", "AUTO"),
    "ENGINES": ("registry", "ENGINES"),
    "EngineRegistry": ("registry", "EngineRegistry"),
    "BackendEngine": ("engines", "BackendEngine"),
    "Engine": ("engines", "Engine"),
    "EngineCapabilities": ("engines", "EngineCapabilities"),
}


def __getattr__(name: str) -> Any:
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f".{target[0]}", __name__), target[1])
    globals()[name] = value
    return value


def cache_info() -> dict:
    """One snapshot of every runtime cache.

    The canonical replacement for the deprecated split
    ``plan_cache_info()`` / ``native_plan_cache_info()`` surfaces:
    the plan tier (totals, budget, per-engine namespaces), the result
    cache, and the native execution mode probes.
    """
    from ..native import NUMBA_AVAILABLE
    from ..native.plan import native_mode

    return {
        "plan": PLAN_CACHE.info(),
        "result": RESULT_CACHE.info(),
        "native_mode": native_mode(),
        "numba_available": NUMBA_AVAILABLE,
    }


def legacy_plan_cache_info() -> dict:
    """The pre-runtime ``plan_cache_info()`` payload, warning-free.

    Health/metrics/stats endpoints keep their historical ``plan_cache``
    key populated with this shape for one deprecation cycle; new callers
    should read :func:`cache_info` instead.
    """
    from ..network.compile_plan import _plan_cache_record

    return _plan_cache_record()


def evict_fingerprint(fingerprint: str) -> dict[str, int]:
    """Purge one retired model from every runtime cache.

    The registry calls this when a model is removed or superseded by a
    hot-swap promotion: cached plans and result rows keyed on the
    retired fingerprint must never be served again.  Returns the purge
    counts (``{"plans": n, "results": n}``); the per-cache
    ``*.evict.retired`` counters record the same event for dashboards.
    """
    return {
        "plans": PLAN_CACHE.evict_fingerprint(fingerprint),
        "results": RESULT_CACHE.evict_fingerprint(fingerprint),
    }


def clear_caches(*, plans: bool = True, results: bool = True) -> None:
    """Empty the runtime caches (plan tier + identity memos, results)."""
    if plans:
        # Module-path imports: ``repro.network`` re-exports a *function*
        # named ``compile_plan``, which would shadow the module.
        from ..native.plan import _NATIVE_MEMO
        from ..network.compile_plan import _PLAN_MEMO

        _PLAN_MEMO.clear()
        _NATIVE_MEMO.clear()
        PLAN_CACHE.clear()
    if results:
        RESULT_CACHE.clear()
