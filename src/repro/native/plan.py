"""Native-speed lowering: fused level-kernels over preallocated arenas.

The compiled int64 engine (:mod:`repro.network.compile_plan`) already
fuses whole levels into vector instructions, but each run still pays
per-group Python dispatch, per-run output allocation, and a
batch-major ``(B, n_nodes)`` layout whose gathers stride across rows.
This module lowers the *same* optimized :class:`~repro.ir.program.
Program` one step further, to a :class:`NativePlan`:

* **node-major arenas** — values live in a persistent ``(n_cols, B)``
  int64 arena whose columns are *permuted* so inputs, params, and every
  fused instruction group occupy contiguous row ranges.  The input
  scatter is one transposed copy, every kernel writes one contiguous
  slice, and constant rows (the lattice identities ``∞`` and ``0``) are
  filled once at arena allocation and never touched again;
* **fused megaops** — per scheduled level, one gather-based kernel per
  op class: saturating ``inc`` (``take`` + clamp + add), segment
  ``min``/``max`` reductions (uniform arity via a rectangular
  reshape-reduce, ragged arity via ``np.minimum.reduceat``), and
  batched ``lt`` latches (compare + masked copy).  No per-node Python
  dispatch survives lowering — the kernel list length is the *group*
  count, not the node count;
* **preallocated scratch** — gather buffers and the ``lt`` mask are
  allocated once per batch size and recycled through a thread-safe
  free-list, so steady-state runs allocate only their output matrix.

When Numba is importable the same plan executes through the
row-parallel scalar interpreter of :mod:`repro.native.jit` — one
``@njit(parallel=True)`` function shared by all plans, ``prange`` over
the batch dimension.  Mode selection is automatic (Numba when
available) and overridable per run with ``REPRO_NATIVE=numpy|numba``;
requesting ``numba`` without Numba installed falls back to the fused
NumPy path (counted in ``native.fallbacks``).

Plans are cached exactly like compiled plans: a weak identity memo in
front of a bounded fingerprint-keyed LRU
(:func:`compile_native` / :func:`native_plan_cache_info`), with hit,
miss and eviction counts under ``native_plan_cache.*``.

Tracing is *post-hoc*: the native engine computes every node's fire
time, and the canonical spike trace is a pure function of fire times
(:func:`repro.obs.trace.emit_events`), so a trace emitted after the run
is byte-identical to the level-by-level traces of the other backends.
"""

from __future__ import annotations

import os
import threading
import warnings
import weakref
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..core.value import Time
from ..ir.program import CONST_IDENTITY, Program, ProgramLike, classify, ensure_program
from ..network.compile_plan import (
    INF_I64,
    VolleyLike,
    _encode_params,
    encode_volleys,
)
from ..network.graph import NetworkError
from ..obs import metrics as _obs_metrics
from . import jit as _jit

#: Valid ``REPRO_NATIVE`` settings.
NATIVE_MODES = ("auto", "numpy", "numba")

#: Re-exported so callers can gate Numba-only behaviour in one place.
NUMBA_AVAILABLE = _jit.NUMBA_AVAILABLE

#: Recycled buffer sets kept per (layout, batch) key; beyond this the
#: buffers are dropped rather than pooled (burst protection).
_POOL_DEPTH = 4


def native_mode() -> str:
    """The execution strategy this run will use: ``numpy`` or ``numba``.

    Reads ``REPRO_NATIVE`` (``auto`` when unset).  ``numba`` silently
    degrades to ``numpy`` when Numba is not importable — the fused-NumPy
    path is the mandatory fallback — counting the downgrade in the
    ``native.fallbacks`` metric so operators can see it happened.
    """
    requested = os.environ.get("REPRO_NATIVE", "auto").strip().lower() or "auto"
    if requested not in NATIVE_MODES:
        raise NetworkError(
            f"REPRO_NATIVE must be one of {NATIVE_MODES}, got {requested!r}"
        )
    if requested == "numpy":
        return "numpy"
    if _jit.NUMBA_AVAILABLE:
        return "numba"
    if requested == "numba":
        _obs_metrics.METRICS.inc("native.fallbacks")
    return "numpy"


# ---------------------------------------------------------------------------
# Kernel forms
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _IncKernel:
    """One level's delays: gather, clamp to ``INF - amount``, add."""

    lo: int
    hi: int
    srcs: np.ndarray  # (g,) arena rows
    amounts: np.ndarray  # (g, 1) broadcast against the batch dim
    caps: np.ndarray  # INF_I64 - amounts, precomputed


@dataclass(frozen=True)
class _UniformReduceKernel:
    """Same-arity ``min``/``max`` group: one gather + rectangular reduce."""

    lo: int
    hi: int
    srcs: np.ndarray  # (g*k,) arena rows, node-major
    k: int
    is_min: bool


@dataclass(frozen=True)
class _RaggedReduceKernel:
    """Mixed-arity ``min``/``max`` group: one gather + ``reduceat``."""

    lo: int
    hi: int
    srcs: np.ndarray  # (total_sources,) arena rows
    offsets: np.ndarray  # (g,) segment starts into srcs
    is_min: bool


@dataclass(frozen=True)
class _LtKernel:
    """One level's ``lt`` races: two gathers, compare, masked latch."""

    lo: int
    hi: int
    a: np.ndarray
    b: np.ndarray


_Kernel = Union[_IncKernel, _UniformReduceKernel, _RaggedReduceKernel, _LtKernel]


@dataclass(frozen=True)
class _ConstFill:
    """A run of lattice-identity rows, filled once at arena allocation."""

    lo: int
    hi: int
    value: int


def _kernel_reads(kernel: _Kernel) -> set[int]:
    """Arena rows a kernel gathers from (dependency analysis)."""
    if isinstance(kernel, _LtKernel):
        return set(kernel.a.tolist()) | set(kernel.b.tolist())
    return set(kernel.srcs.tolist())


def _execute_kernels(kernels, arena, s1, s2, mask) -> None:
    """Run a kernel list over a node-major arena (the fused-NumPy path).

    Shared by :class:`NativePlan` and the fault-injection oracle that
    deliberately reorders a kernel list — both must execute kernels
    identically for the reorder mutant to model only a scheduling bug.
    """
    for kernel in kernels:
        if isinstance(kernel, _IncKernel):
            g = kernel.hi - kernel.lo
            np.take(arena, kernel.srcs, axis=0, out=s1[:g])
            np.minimum(s1[:g], kernel.caps, out=s1[:g])
            np.add(s1[:g], kernel.amounts, out=arena[kernel.lo:kernel.hi])
        elif isinstance(kernel, _UniformReduceKernel):
            g = kernel.hi - kernel.lo
            np.take(arena, kernel.srcs, axis=0, out=s1[: g * kernel.k])
            gathered = s1[: g * kernel.k].reshape(g, kernel.k, arena.shape[1])
            reduce = np.min if kernel.is_min else np.max
            reduce(gathered, axis=1, out=arena[kernel.lo:kernel.hi])
        elif isinstance(kernel, _RaggedReduceKernel):
            total = len(kernel.srcs)
            np.take(arena, kernel.srcs, axis=0, out=s1[:total])
            reduce = np.minimum if kernel.is_min else np.maximum
            reduce.reduceat(
                s1[:total], kernel.offsets, axis=0,
                out=arena[kernel.lo:kernel.hi],
            )
        else:  # _LtKernel
            g = kernel.hi - kernel.lo
            np.take(arena, kernel.a, axis=0, out=s1[:g])
            np.take(arena, kernel.b, axis=0, out=s2[:g])
            np.less(s1[:g], s2[:g], out=mask[:g])
            out = arena[kernel.lo:kernel.hi]
            out[...] = INF_I64
            np.copyto(out, s1[:g], where=mask[:g])


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------

class NativePlan:
    """An arena-and-kernel compilation of one program structure.

    Accepts a :class:`~repro.ir.program.Program` or a
    :class:`~repro.network.graph.Network` (lowered on entry).  The level
    schedule and the zero-source constant classification come from the
    IR — this backend only encodes what it is told, like every other.
    """

    def __init__(self, source: "ProgramLike"):
        program = ensure_program(source)
        self.program = program
        self.nodes = program.nodes
        self.n_nodes = len(program.nodes)
        self.fingerprint = program.fingerprint()
        self.input_names = list(program.input_ids)
        self.param_names = list(program.param_ids)
        self.output_names = list(program.outputs)
        self.n_inputs = len(program.input_ids)
        self.n_params = len(program.param_ids)

        # -- arena column assignment ------------------------------------------
        # Inputs first (the scatter is then one transposed block copy),
        # params next, then each (level, kind) group contiguously in
        # schedule order.  ``perm[node_id]`` is the node's arena row.
        order: list[int] = list(program.input_ids.values())
        order += list(program.param_ids.values())
        buckets: dict[tuple[int, str], list] = {}
        for node in program.nodes:
            if node.is_terminal:
                continue
            buckets.setdefault(
                (program.levels[node.id], classify(node)), []
            ).append(node)
        grouped = []
        for (_, kind), nodes in sorted(buckets.items(), key=lambda kv: kv[0]):
            lo = len(order)
            order.extend(n.id for n in nodes)
            grouped.append((kind, lo, len(order), nodes))
        self.n_cols = len(order)
        self.perm = np.empty(self.n_nodes, dtype=np.int64)
        for col, node_id in enumerate(order):
            self.perm[node_id] = col

        # -- kernel emission ---------------------------------------------------
        perm = self.perm
        kernels: list[_Kernel] = []
        const_fills: list[_ConstFill] = []
        max_gather = 1
        for kind, lo, hi, nodes in grouped:
            g = hi - lo
            if kind == "inc":
                amounts = np.array([[n.amount] for n in nodes], dtype=np.int64)
                kernels.append(
                    _IncKernel(
                        lo=lo,
                        hi=hi,
                        srcs=perm[[n.sources[0] for n in nodes]],
                        amounts=amounts,
                        caps=INF_I64 - amounts,
                    )
                )
                max_gather = max(max_gather, g)
            elif kind in ("min", "max"):
                widths = {len(n.sources) for n in nodes}
                flat = perm[[s for n in nodes for s in n.sources]]
                if len(widths) == 1:
                    k = widths.pop()
                    kernels.append(
                        _UniformReduceKernel(
                            lo=lo, hi=hi, srcs=flat, k=k, is_min=kind == "min"
                        )
                    )
                else:
                    offsets = np.cumsum(
                        [0] + [len(n.sources) for n in nodes[:-1]]
                    ).astype(np.int64)
                    kernels.append(
                        _RaggedReduceKernel(
                            lo=lo, hi=hi, srcs=flat, offsets=offsets,
                            is_min=kind == "min",
                        )
                    )
                max_gather = max(max_gather, len(flat))
            elif kind == "lt":
                kernels.append(
                    _LtKernel(
                        lo=lo,
                        hi=hi,
                        a=perm[[n.sources[0] for n in nodes]],
                        b=perm[[n.sources[1] for n in nodes]],
                    )
                )
                max_gather = max(max_gather, g)
            else:  # const-inf / const-zero: filled at arena allocation
                value = INF_I64 if kind == "const-inf" else int(CONST_IDENTITY[kind])
                const_fills.append(_ConstFill(lo=lo, hi=hi, value=value))
        self.kernels: tuple[_Kernel, ...] = tuple(kernels)
        self.const_fills: tuple[_ConstFill, ...] = tuple(const_fills)
        self.max_gather = max_gather
        self.out_cols = perm[list(program.outputs.values())]
        self.out_node_ids = np.asarray(
            list(program.outputs.values()), dtype=np.int64
        )

        self._pool: dict[tuple[str, int], list] = {}
        self._pool_lock = threading.Lock()
        self._flat: Optional[tuple[np.ndarray, ...]] = None

    # -- introspection ---------------------------------------------------------
    @property
    def n_instructions(self) -> int:
        """Fused kernel count plus constant fills (compare CompiledPlan)."""
        return len(self.kernels) + len(self.const_fills)

    def describe(self) -> str:
        """One line per kernel, for reports and debugging."""
        lines = [
            f"native plan: {self.n_nodes} nodes -> {self.n_cols} arena rows, "
            f"{len(self.kernels)} kernel(s), {len(self.const_fills)} const fill(s)"
        ]
        for fill in self.const_fills:
            label = "∞" if fill.value == INF_I64 else fill.value
            lines.append(f"  const({label}) rows {fill.lo}:{fill.hi}")
        for kernel in self.kernels:
            g = kernel.hi - kernel.lo
            if isinstance(kernel, _IncKernel):
                lines.append(f"  inc       x{g}")
            elif isinstance(kernel, _UniformReduceKernel):
                op = "min" if kernel.is_min else "max"
                lines.append(f"  {op:<9} x{g} (arity={kernel.k})")
            elif isinstance(kernel, _RaggedReduceKernel):
                op = "min" if kernel.is_min else "max"
                lines.append(f"  {op:<9} x{g} (ragged, {len(kernel.srcs)} srcs)")
            else:
                lines.append(f"  lt        x{g}")
        return "\n".join(lines)

    # -- buffer pool -----------------------------------------------------------
    def _acquire(self, layout: str, batch: int):
        """A buffer set for *layout* (``cols``/``rows``) and batch size.

        Constant rows are filled at allocation and never overwritten by
        any kernel, so recycled buffers need no refill; inputs, params,
        and every kernel target slice are rewritten each run.
        """
        key = (layout, batch)
        with self._pool_lock:
            stack = self._pool.get(key)
            if stack:
                return stack.pop()
        if layout == "cols":
            arena = np.empty((self.n_cols, batch), dtype=np.int64)
            for fill in self.const_fills:
                arena[fill.lo:fill.hi] = fill.value
            s1 = np.empty((self.max_gather, batch), dtype=np.int64)
            s2 = np.empty((self.max_gather, batch), dtype=np.int64)
            mask = np.empty((self.max_gather, batch), dtype=bool)
            return (arena, s1, s2, mask)
        arena = np.empty((batch, self.n_cols), dtype=np.int64)
        for fill in self.const_fills:
            arena[:, fill.lo:fill.hi] = fill.value
        return (arena,)

    def _release(self, layout: str, batch: int, buffers) -> None:
        key = (layout, batch)
        with self._pool_lock:
            stack = self._pool.setdefault(key, [])
            if len(stack) < _POOL_DEPTH:
                stack.append(buffers)

    # -- execution -------------------------------------------------------------
    def _require_params(self, param_vector: Optional[np.ndarray]) -> np.ndarray:
        if self.n_params and param_vector is None:
            raise NetworkError(
                f"network has {self.n_params} params; none bound"
            )
        return param_vector

    def _flat_instructions(self) -> tuple[np.ndarray, ...]:
        """The per-node instruction arrays the row interpreter consumes.

        Built lazily (only the numba path needs them) in the same
        level-schedule order the kernels run in — any order where every
        node follows its sources is valid, and this one is already
        proven by the kernel list.
        """
        if self._flat is None:
            kinds: list[int] = []
            targets: list[int] = []
            offs: list[int] = []
            lens: list[int] = []
            amounts: list[int] = []
            srcs: list[int] = []
            for kernel in self.kernels:
                if isinstance(kernel, _IncKernel):
                    for i, target in enumerate(range(kernel.lo, kernel.hi)):
                        kinds.append(_jit.OP_INC)
                        targets.append(target)
                        offs.append(len(srcs))
                        lens.append(1)
                        amounts.append(int(kernel.amounts[i, 0]))
                        srcs.append(int(kernel.srcs[i]))
                elif isinstance(kernel, _UniformReduceKernel):
                    op = _jit.OP_MIN if kernel.is_min else _jit.OP_MAX
                    for i, target in enumerate(range(kernel.lo, kernel.hi)):
                        kinds.append(op)
                        targets.append(target)
                        offs.append(len(srcs))
                        lens.append(kernel.k)
                        amounts.append(0)
                        srcs.extend(
                            int(s)
                            for s in kernel.srcs[i * kernel.k:(i + 1) * kernel.k]
                        )
                elif isinstance(kernel, _RaggedReduceKernel):
                    op = _jit.OP_MIN if kernel.is_min else _jit.OP_MAX
                    bounds = list(kernel.offsets) + [len(kernel.srcs)]
                    for i, target in enumerate(range(kernel.lo, kernel.hi)):
                        kinds.append(op)
                        targets.append(target)
                        offs.append(len(srcs))
                        lens.append(int(bounds[i + 1]) - int(bounds[i]))
                        amounts.append(0)
                        srcs.extend(
                            int(s) for s in kernel.srcs[bounds[i]:bounds[i + 1]]
                        )
                else:  # _LtKernel
                    for i, target in enumerate(range(kernel.lo, kernel.hi)):
                        kinds.append(_jit.OP_LT)
                        targets.append(target)
                        offs.append(len(srcs))
                        lens.append(2)
                        amounts.append(0)
                        srcs.append(int(kernel.a[i]))
                        srcs.append(int(kernel.b[i]))
            self._flat = tuple(
                np.asarray(column, dtype=np.int64)
                for column in (kinds, targets, offs, lens, amounts, srcs)
            )
        return self._flat

    def _run_cols(self, matrix: np.ndarray, param_vector) -> np.ndarray:
        """The fused-NumPy path; returns the node-major arena (pooled)."""
        batch = matrix.shape[0]
        buffers = self._acquire("cols", batch)
        arena, s1, s2, mask = buffers
        arena[: self.n_inputs] = matrix.T
        if self.n_params:
            arena[self.n_inputs:self.n_inputs + self.n_params] = (
                param_vector[:, np.newaxis]
            )
        _execute_kernels(self.kernels, arena, s1, s2, mask)
        return buffers

    def _run_rows(self, matrix: np.ndarray, param_vector) -> tuple:
        """The Numba row-interpreter path; returns the row-major arena."""
        batch = matrix.shape[0]
        buffers = self._acquire("rows", batch)
        arena = buffers[0]
        arena[:, : self.n_inputs] = matrix
        if self.n_params:
            arena[:, self.n_inputs:self.n_inputs + self.n_params] = param_vector
        _jit.run_rows(arena, *self._flat_instructions())
        return buffers

    def _execute(self, matrix, param_vector, gather_cols) -> np.ndarray:
        """Run once and gather *gather_cols* as a ``(B, len(cols))`` copy."""
        param_vector = self._require_params(param_vector)
        mode = native_mode()
        if mode == "numba":
            buffers = self._run_rows(matrix, param_vector)
            out = buffers[0][:, gather_cols]
            self._release("rows", matrix.shape[0], buffers)
        else:
            buffers = self._run_cols(matrix, param_vector)
            out = np.ascontiguousarray(buffers[0][gather_cols].T)
            self._release("cols", matrix.shape[0], buffers)
        _obs_metrics.METRICS.inc("native.runs")
        return out

    def outputs(
        self, matrix: np.ndarray, param_vector: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Encoded ``(B, n_outputs)`` spike times for an encoded batch."""
        return self._execute(matrix, param_vector, self.out_cols)

    def run(
        self, matrix: np.ndarray, param_vector: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Every node's value, ``(B, n_nodes)`` in node-id order.

        The native twin of :meth:`~repro.network.compile_plan.
        CompiledPlan.run` — the permutation back to node-id order makes
        the result directly comparable (and usable by the post-hoc
        trace emission, which walks nodes by id).
        """
        return self._execute(matrix, param_vector, self.perm)

    def warm(self) -> "NativePlan":
        """Run one synthetic volley so first real traffic pays no lazy cost.

        Beyond the NumPy warmup concerns the int64 engine has, this also
        triggers the one-per-process Numba JIT compilation when the
        resolved mode is ``numba`` — exactly the cost serving workers
        must not pay on a request.  Counted in ``plan.warmups.native``.
        """
        matrix = np.zeros((1, self.n_inputs), dtype=np.int64)
        param_vector = (
            np.full(self.n_params, INF_I64, dtype=np.int64)
            if self.n_params
            else None
        )
        self.outputs(matrix, param_vector)
        _obs_metrics.METRICS.inc("plan.warmups.native")
        return self


# ---------------------------------------------------------------------------
# Plan cache (the ``native`` namespace of the unified runtime tier)
# ---------------------------------------------------------------------------

# PR 9: the structural store moved into repro.runtime's shared tier
# (separately namespaced and counted, one global budget); this module
# keeps the weak identity memo and deprecation shims.
from ..runtime.cache import PLAN_CACHE as _PLAN_CACHE  # noqa: E402

_NATIVE_NAMESPACE = "native"
_PLAN_CACHE.register_namespace(
    _NATIVE_NAMESPACE, metric_prefix="native_plan_cache", limit=128
)

_NATIVE_MEMO: "weakref.WeakKeyDictionary[ProgramLike, NativePlan]" = (
    weakref.WeakKeyDictionary()
)


def set_native_plan_cache_limit(limit: int) -> int:
    """Resize the native structural LRU; returns the previous limit.

    .. deprecated:: PR 9
       Forwards to ``repro.runtime.PLAN_CACHE.set_namespace_limit``.
    """
    warnings.warn(
        "repro.native.set_native_plan_cache_limit() is deprecated; use "
        "repro.runtime.PLAN_CACHE.set_namespace_limit('native', limit)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _PLAN_CACHE.set_namespace_limit(_NATIVE_NAMESPACE, limit)


def compile_native(source: "ProgramLike") -> NativePlan:
    """The memoized native plan for *source* (Network or Program).

    Identical caching discipline to :func:`~repro.network.compile_plan.
    compile_plan` — weak identity memo, then the IR fingerprint keyed
    into the shared runtime tier — but a separate namespace: a process
    typically holds both an int64 plan and a native plan for the same
    fingerprint, and the two are independently sized and counted
    (``native_plan_cache.*``).
    """
    plan = _NATIVE_MEMO.get(source)
    if plan is not None:
        _obs_metrics.METRICS.inc("native_plan_cache.hit.identity")
        return plan
    print_key = ensure_program(source).fingerprint()
    plan = _PLAN_CACHE.get(_NATIVE_NAMESPACE, print_key)
    if plan is None:
        with _obs_metrics.METRICS.timeit("native_plan.compile"):
            plan = NativePlan(source)
        _PLAN_CACHE.put(_NATIVE_NAMESPACE, print_key, plan)
    _NATIVE_MEMO[source] = plan
    return plan


def _native_cache_record() -> dict:
    """The historical ``native_plan_cache_info()`` payload, warning-free."""
    ns = _PLAN_CACHE.namespace_info(_NATIVE_NAMESPACE)
    return {
        "identity": len(_NATIVE_MEMO),
        "structural": ns["entries"],
        "limit": ns["limit"],
        "hits_identity": _obs_metrics.METRICS.counter(
            "native_plan_cache.hit.identity"
        ),
        "hits_structural": ns["hits_structural"],
        "misses": ns["misses"],
        "evictions": ns["evictions"],
        "mode": native_mode(),
        "numba_available": _jit.NUMBA_AVAILABLE,
    }


def native_plan_cache_info() -> dict:
    """Native-plan cache occupancy and lifetime hit/miss/evict counts.

    .. deprecated:: PR 9
       Read ``repro.runtime.cache_info()`` instead.
    """
    warnings.warn(
        "repro.native.native_plan_cache_info() is deprecated; use "
        "repro.runtime.cache_info()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _native_cache_record()


def clear_native_plan_cache() -> None:
    """Drop every cached native plan (tests and memory-sensitive callers).

    .. deprecated:: PR 9
       Use ``repro.runtime.clear_caches()``.
    """
    warnings.warn(
        "repro.native.clear_native_plan_cache() is deprecated; use "
        "repro.runtime.clear_caches()",
        DeprecationWarning,
        stacklevel=2,
    )
    _NATIVE_MEMO.clear()
    _PLAN_CACHE.clear(_NATIVE_NAMESPACE)


# ---------------------------------------------------------------------------
# Batched evaluation API
# ---------------------------------------------------------------------------

def evaluate_batch_native(
    network: "ProgramLike",
    inputs: VolleyLike,
    *,
    params: Optional[Mapping[str, Time]] = None,
    sink=None,
    trace_row: int = 0,
) -> np.ndarray:
    """Native twin of :func:`~repro.network.compile_plan.evaluate_batch`.

    Same contract: encoded ``(B, n_outputs)`` int64 out, columns in
    output declaration order, ``INF_I64`` marking silence.  *sink*
    records the canonical spike trace of batch row *trace_row*; the
    native engine traces **post-hoc** — the full value vector is
    computed first, then events are derived from it — which yields the
    same canonical byte stream as the incremental backends because the
    trace is a pure function of fire times.
    """
    plan = compile_native(network)
    matrix = encode_volleys(inputs, arity=plan.n_inputs)
    param_vector = _encode_params(network, params)
    if sink is not None and sink.enabled:
        values = plan.run(matrix, param_vector)
        from ..obs.trace import emit_events

        emit_events(sink, plan.program, values[trace_row])
        out = np.ascontiguousarray(values[:, plan.out_node_ids])
    else:
        out = plan.outputs(matrix, param_vector)
    metrics = _obs_metrics.METRICS
    metrics.inc("evaluate_batch_native.calls")
    metrics.inc("evaluate_batch_native.volleys", matrix.shape[0])
    return out
