"""Optional Numba lowering: one row-parallel interpreter for every plan.

The native backend has two execution strategies over the same flattened
instruction encoding:

* the fused-NumPy kernels in :mod:`repro.native.plan` — the mandatory
  fallback, always available;
* the row-parallel scalar interpreter in this module, compiled with
  ``@njit(parallel=True)`` when Numba is importable.

The interpreter exploits the defining property of a batched s-t
evaluation: **rows are independent**.  Every volley walks the same
instruction list, so one ``prange`` over the batch dimension
parallelizes the whole program with no level barriers and no
synchronization — each thread interprets complete volleys against its
own contiguous ``(n_cols,)`` arena row.  The instruction encoding is
five parallel arrays (kind, target column, source offset/length, inc
amount) plus one flat source-column array, so a single compiled
function serves *every* plan — compilation cost is paid once per
process, not once per network.

When Numba is absent, :data:`run_rows` falls back to the identical
pure-Python interpreter.  It is far too slow to serve as an execution
strategy (the fused-NumPy path is), but it keeps the instruction
encoding executable everywhere — the property tests run the "numba"
code path byte-for-byte even on machines without Numba.

Saturation semantics match the int64 engine exactly: ``∞`` is
:data:`~repro.network.compile_plan.INF_I64`, ``inc`` clamps its operand
to ``INF_I64 - amount`` before adding (absorbing and overflow-free),
``lt`` latches its first operand or ``∞``.
"""

from __future__ import annotations

from ..network.compile_plan import INF_I64

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - import guard
    NUMBA_AVAILABLE = False
    prange = range

#: Instruction opcodes shared by the flattener and both interpreters.
OP_INC, OP_MIN, OP_MAX, OP_LT = 0, 1, 2, 3

_INF = INF_I64


def _run_rows_impl(arena, kinds, targets, offs, lens, amounts, srcs):
    batch = arena.shape[0]
    n_ops = kinds.shape[0]
    for r in prange(batch):
        row = arena[r]
        for i in range(n_ops):
            kind = kinds[i]
            if kind == OP_INC:
                x = row[srcs[offs[i]]]
                amount = amounts[i]
                cap = _INF - amount
                if x > cap:
                    x = cap
                row[targets[i]] = x + amount
            elif kind == OP_MIN:
                acc = _INF
                for j in range(offs[i], offs[i] + lens[i]):
                    v = row[srcs[j]]
                    if v < acc:
                        acc = v
                row[targets[i]] = acc
            elif kind == OP_MAX:
                acc = 0
                for j in range(offs[i], offs[i] + lens[i]):
                    v = row[srcs[j]]
                    if v > acc:
                        acc = v
                row[targets[i]] = acc
            else:  # OP_LT
                a = row[srcs[offs[i]]]
                b = row[srcs[offs[i] + 1]]
                row[targets[i]] = a if a < b else _INF


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    run_rows = njit(parallel=True, nogil=True, cache=True)(_run_rows_impl)
else:
    run_rows = _run_rows_impl
