"""Native-speed backend: fused arena kernels with optional Numba JIT.

The fifth execution backend.  :func:`compile_native` lowers an
optimized :class:`~repro.ir.program.Program` to a :class:`NativePlan`
of fused, gather-based level kernels over preallocated int64 arenas;
:func:`evaluate_batch_native` is the drop-in batched entry point.
``REPRO_NATIVE=numpy|numba`` (default ``auto``) selects the execution
strategy per run.  See DESIGN.md §11.
"""

from .jit import NUMBA_AVAILABLE
from .plan import (
    NATIVE_MODES,
    NativePlan,
    clear_native_plan_cache,
    compile_native,
    evaluate_batch_native,
    native_mode,
    native_plan_cache_info,
    set_native_plan_cache_limit,
)

__all__ = [
    "NATIVE_MODES",
    "NUMBA_AVAILABLE",
    "NativePlan",
    "clear_native_plan_cache",
    "compile_native",
    "evaluate_batch_native",
    "native_mode",
    "native_plan_cache_info",
    "set_native_plan_cache_limit",
]
