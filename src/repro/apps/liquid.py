"""A liquid state machine on spiking neurons (paper §II.C, extension).

The paper notes that Liquid State Machines share TNN principles (temporal
coding, spiking neurons) but add feedback through pseudo-random recurrent
connections, and that "the theory in this paper may potentially be
extended to include them".  This module implements that extension in the
natural way for a discretized model: the liquid runs in *rounds* — each
round is one feedforward volley computation through the reservoir column
(legal s-t computation), and the round's output volley, unit-delayed, is
fed back as part of the next round's input.  Time within a round obeys
the algebra; recurrence happens only at round boundaries.

Components:

* :class:`LiquidStateMachine` — a pseudo-random reservoir of SRM0 neurons
  (fixed, untrained) driven by an input stream of volleys; its *state* is
  the trace of reservoir volleys.
* :class:`Readout` — a trained linear readout over the reservoir trace
  (the only trained part, per Maass's LSM recipe).  Implemented as a
  simple delta-rule classifier on spike-latency features.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Optional

import numpy as np

from ..core.value import INF, Infinity, Time
from ..coding.volley import Volley
from ..neuron.column import Column
from ..neuron.response import ResponseFunction


class LiquidStateMachine:
    """A fixed random reservoir driven round-by-round."""

    def __init__(
        self,
        n_inputs: int,
        n_reservoir: int,
        *,
        feedback_fraction: float = 0.5,
        threshold_fraction: float = 0.35,
        base_response: Optional[ResponseFunction] = None,
        seed: int = 0,
    ):
        if n_inputs < 1 or n_reservoir < 1:
            raise ValueError("need at least one input and one reservoir neuron")
        if not 0.0 <= feedback_fraction <= 1.0:
            raise ValueError("feedback_fraction must be in [0, 1]")
        rng = random.Random(seed)
        base = base_response or ResponseFunction.piecewise_linear(
            amplitude=2, rise=1, fall=4
        )
        fan_in = n_inputs + n_reservoir
        weights = np.zeros((n_reservoir, fan_in), dtype=np.int64)
        for i in range(n_reservoir):
            for j in range(n_inputs):
                weights[i][j] = rng.randint(0, 3)
            for j in range(n_reservoir):
                if rng.random() < feedback_fraction:
                    weights[i][n_inputs + j] = rng.randint(1, 2)
        drive = int(weights.sum(axis=1).mean()) * base.r_max
        threshold = max(1, round(drive * threshold_fraction))
        # No WTA inside the liquid: rich, distributed state is the point.
        self.column = Column(
            weights, threshold=threshold, base_response=base, wta_window=10**6
        )
        self.n_inputs = n_inputs
        self.n_reservoir = n_reservoir

    def run(self, stream: Sequence[Volley | Sequence[Time]]) -> list[tuple[Time, ...]]:
        """Drive the liquid with a volley stream; returns the state trace.

        Round ``k`` computes the reservoir volley from the concatenation
        of input volley ``k`` and the previous round's reservoir volley
        (unit-delayed, i.e. re-normalized into the new round's frame).
        """
        previous: tuple[Time, ...] = (INF,) * self.n_reservoir
        trace: list[tuple[Time, ...]] = []
        for volley in stream:
            inputs = tuple(volley)
            if len(inputs) != self.n_inputs:
                raise ValueError(
                    f"expected {self.n_inputs}-line volleys, got {len(inputs)}"
                )
            recurrent = _renormalize(previous)
            state = self.column.forward(inputs + recurrent)
            trace.append(state)
            previous = state
        return trace

    def features(self, stream: Sequence[Volley | Sequence[Time]]) -> np.ndarray:
        """Latency features of the whole reservoir trace (for readouts).

        The standard LSM readout samples the liquid's state over time;
        here each round's volley embeds as ``1 / (1 + t)`` per line
        (earlier = stronger, silence = 0) and rounds concatenate.
        """
        trace = self.run(stream)
        if not trace:
            trace = [(INF,) * self.n_reservoir]
        return np.array(
            [
                0.0 if isinstance(t, Infinity) else 1.0 / (1.0 + int(t))
                for state in trace
                for t in state
            ]
        )


def _renormalize(volley: tuple[Time, ...]) -> tuple[Time, ...]:
    """Re-anchor a volley to time 0 for the next round (unit feedback delay)."""
    finite = [t for t in volley if not isinstance(t, Infinity)]
    if not finite:
        return volley
    lo = min(finite)
    return tuple(
        INF if isinstance(t, Infinity) else int(t) - lo + 1 for t in volley
    )


class Readout:
    """Delta-rule linear classifier over liquid features (the trained part)."""

    def __init__(self, n_features: int, n_classes: int, *, learning_rate: float = 0.1, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.weights = rng.normal(0.0, 0.1, size=(n_classes, n_features + 1))
        self.learning_rate = learning_rate

    def scores(self, features: np.ndarray) -> np.ndarray:
        extended = np.append(features, 1.0)
        return self.weights @ extended

    def predict(self, features: np.ndarray) -> int:
        return int(np.argmax(self.scores(features)))

    def train_one(self, features: np.ndarray, label: int) -> bool:
        predicted = self.predict(features)
        if predicted == label:
            return True
        extended = np.append(features, 1.0)
        self.weights[label] += self.learning_rate * extended
        self.weights[predicted] -= self.learning_rate * extended
        return False

    def train(
        self,
        feature_sets: Sequence[np.ndarray],
        labels: Sequence[int],
        *,
        epochs: int = 20,
        rng: Optional[random.Random] = None,
    ) -> list[float]:
        if len(feature_sets) != len(labels):
            raise ValueError("one label per feature set required")
        rng = rng or random.Random(0)
        history = []
        for _ in range(epochs):
            order = list(range(len(feature_sets)))
            rng.shuffle(order)
            correct = sum(
                1 for i in order if self.train_one(feature_sets[i], labels[i])
            )
            history.append(correct / len(labels) if labels else 1.0)
            if history[-1] == 1.0:
                break
        return history


def sequence_classification_experiment(
    *,
    n_inputs: int = 6,
    n_reservoir: int = 24,
    n_classes: int = 3,
    sequence_length: int = 4,
    train_per_class: int = 12,
    test_per_class: int = 6,
    jitter: int = 1,
    seed: int = 0,
) -> tuple[float, float]:
    """End-to-end LSM benchmark: classify volley *sequences*.

    Each class is a fixed sequence of latency volleys; presentations are
    jittered.  A feedforward TNN sees only one volley at a time — the
    reservoir's recurrent state is what accumulates sequence identity.
    Returns ``(train_accuracy, test_accuracy)``.
    """
    rng = random.Random(seed)
    prototypes = [
        [
            [rng.randint(0, 5) for _ in range(n_inputs)]
            for _ in range(sequence_length)
        ]
        for _ in range(n_classes)
    ]

    def presentation(label: int) -> list[Volley]:
        return [
            Volley(
                [
                    max(0, t + rng.randint(-jitter, jitter))
                    for t in step
                ]
            )
            for step in prototypes[label]
        ]

    lsm = LiquidStateMachine(n_inputs, n_reservoir, seed=seed)

    def dataset(count_per_class: int):
        features, labels = [], []
        for label in range(n_classes):
            for _ in range(count_per_class):
                features.append(lsm.features(presentation(label)))
                labels.append(label)
        return features, labels

    train_x, train_y = dataset(train_per_class)
    test_x, test_y = dataset(test_per_class)
    readout = Readout(n_reservoir * sequence_length, n_classes, seed=seed)
    readout.train(train_x, train_y, epochs=40, rng=random.Random(seed + 1))

    def accuracy(xs, ys):
        if not ys:
            return 1.0
        return sum(
            1 for x, y in zip(xs, ys) if readout.predict(x) == y
        ) / len(ys)

    return accuracy(train_x, train_y), accuracy(test_x, test_y)
