"""RBF-like temporal clustering with compound synapses (§II.C).

Hopfield's 1995 observation, developed by Natschläger & Ruf and Bohte et
al.: multiple synaptic paths with different delays between the same two
neurons act as a tapped delay line.  A neuron with one synapse per
(input, delay) pair responds maximally when each input's spike arrives at
the delay its strong synapse selects — i.e. it matches a *latency
pattern*, like a radial basis function centred on that pattern.

:class:`CompoundSynapseNeuron` implements the tapped-delay neuron on top
of the behavioral SRM0 model; :class:`TemporalClusterer` trains a bank of
them with winner-take-all STDP on the delay weights and reads clusters
off the winners.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Optional

import numpy as np

from ..core.value import Infinity, Time
from ..coding.volley import Volley
from ..neuron.response import ResponseFunction
from ..neuron.srm0 import SRM0Neuron
from ..neuron.wta import winners


class CompoundSynapseNeuron:
    """An SRM0 neuron with ``n_delays`` parallel paths per input.

    ``weights[input][delay]`` selects how strongly the path with that
    delay drives the neuron; the effective response of input *i* is
    ``Σ_d weights[i][d] * base.delayed(d)``.  The neuron fires earliest
    when each input spikes such that its strongest path's delay lands the
    response peaks together — a temporal RBF.
    """

    def __init__(
        self,
        weights: np.ndarray,
        *,
        threshold: int,
        base_response: Optional[ResponseFunction] = None,
    ):
        matrix = np.asarray(weights, dtype=np.int64)
        if matrix.ndim != 2:
            raise ValueError("weights must be (n_inputs, n_delays)")
        self.weights = matrix
        self.threshold = threshold
        self.base = base_response or ResponseFunction.piecewise_linear(
            amplitude=2, rise=1, fall=2
        )
        self._neuron = self._build()

    def _build(self) -> SRM0Neuron:
        responses = []
        horizon = self.base.t_max + self.n_delays
        for row in self.weights:
            combined = [0] * (horizon + 1)
            for delay, weight in enumerate(row):
                if weight:
                    shifted = self.base.delayed(delay)
                    for t in range(horizon + 1):
                        combined[t] += int(weight) * shifted(t)
            responses.append(ResponseFunction(combined, name="compound"))
        return SRM0Neuron(responses, self.threshold, name="rbf")

    @property
    def n_inputs(self) -> int:
        return self.weights.shape[0]

    @property
    def n_delays(self) -> int:
        return self.weights.shape[1]

    def fire_time(self, volley: Sequence[Time]) -> Time:
        return self._neuron.fire_time(tuple(volley))

    def set_weights(self, weights: np.ndarray) -> None:
        matrix = np.asarray(weights, dtype=np.int64)
        if matrix.shape != self.weights.shape:
            raise ValueError("weight shape cannot change")
        self.weights = matrix
        self._neuron = self._build()

    @classmethod
    def for_center(
        cls,
        center: Sequence[int],
        *,
        n_delays: int,
        weight: int = 4,
        threshold: Optional[int] = None,
        base_response: Optional[ResponseFunction] = None,
    ) -> "CompoundSynapseNeuron":
        """A neuron hand-tuned to a latency pattern.

        Input *i* gets its strong synapse at delay ``max(center) -
        center[i]``, so all paths peak together when the exact pattern is
        applied — the RBF center.
        """
        top = max(center)
        if top - min(center) >= n_delays:
            raise ValueError("center span exceeds the delay line length")
        matrix = np.zeros((len(center), n_delays), dtype=np.int64)
        for i, latency in enumerate(center):
            matrix[i][top - latency] = weight
        theta = threshold if threshold is not None else weight * len(center)
        return cls(matrix, threshold=theta, base_response=base_response)


class TemporalClusterer:
    """A WTA bank of compound-synapse neurons, trained by delay STDP."""

    def __init__(
        self,
        n_inputs: int,
        n_clusters: int,
        *,
        n_delays: int = 8,
        w_max: int = 4,
        threshold_fraction: float = 0.55,
        seed: int = 0,
        base_response: Optional[ResponseFunction] = None,
    ):
        self.n_delays = n_delays
        self.w_max = w_max
        self.rng = random.Random(seed)
        base = base_response or ResponseFunction.piecewise_linear(
            amplitude=2, rise=1, fall=2
        )
        threshold = max(1, round(w_max * base.r_max * n_inputs * threshold_fraction))
        self.neurons = [
            CompoundSynapseNeuron(
                np.array(
                    [
                        [self.rng.randint(0, 2) for _ in range(n_delays)]
                        for _ in range(n_inputs)
                    ],
                    dtype=np.int64,
                ),
                threshold=threshold,
                base_response=base,
            )
            for _ in range(n_clusters)
        ]

    @property
    def n_clusters(self) -> int:
        return len(self.neurons)

    # -- inference ------------------------------------------------------------
    def assign(self, volley: Volley | Sequence[Time]) -> Optional[int]:
        """Cluster index: the earliest-firing neuron (None if silent/tied)."""
        times = tuple(volley)
        raw = tuple(n.fire_time(times) for n in self.neurons)
        tied = winners(raw)
        return tied[0] if len(tied) == 1 else None

    # -- learning ------------------------------------------------------------
    def train_step(self, volley: Volley | Sequence[Time]) -> Optional[int]:
        """Delay-selective STDP on the winning neuron.

        For each input that spiked, the delay slot that would have landed
        the response at the winner's fire time is potentiated; all other
        slots of that input decay.  This is Natschläger & Ruf's rule in
        integer form: delay selection by reinforcement.
        """
        times = tuple(volley)
        raw = tuple(n.fire_time(times) for n in self.neurons)
        tied = winners(raw)
        if not tied:
            return None
        winner = tied[0] if len(tied) == 1 else self.rng.choice(tied)
        t_out = raw[winner]
        assert not isinstance(t_out, Infinity)
        neuron = self.neurons[winner]
        matrix = neuron.weights.copy()
        peak_offset = neuron.base.values.index(neuron.base.r_max)
        for i, t_in in enumerate(times):
            if isinstance(t_in, Infinity):
                continue
            ideal = int(t_out) - int(t_in) - peak_offset
            for d in range(neuron.n_delays):
                if d == ideal:
                    matrix[i][d] = min(self.w_max, matrix[i][d] + 2)
                elif matrix[i][d] > 0 and abs(d - ideal) > 1:
                    matrix[i][d] -= 1
        neuron.set_weights(matrix)
        return winner

    def train(
        self, volleys: Sequence[Volley | Sequence[Time]], *, epochs: int = 3
    ) -> None:
        for _ in range(epochs):
            order = list(range(len(volleys)))
            self.rng.shuffle(order)
            for i in order:
                self.train_step(volleys[i])


def purity(assignments: Sequence[Optional[int]], labels: Sequence[int]) -> float:
    """Cluster purity: majority-label mass over decided assignments."""
    if len(assignments) != len(labels):
        raise ValueError("one label per assignment required")
    buckets: dict[int, dict[int, int]] = {}
    decided = 0
    for cluster, label in zip(assignments, labels):
        if cluster is None:
            continue
        decided += 1
        buckets.setdefault(cluster, {}).setdefault(label, 0)
        buckets[cluster][label] += 1
    if not decided:
        return 0.0
    return sum(max(counts.values()) for counts in buckets.values()) / decided
