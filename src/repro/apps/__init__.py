"""End-to-end TNN applications built on the library.

The workloads the paper's survey motivates: unsupervised pattern
classification (Masquelier/Thorpe-style), Bichler-style AER trajectory
tracking (Fig. 4), and RBF-like temporal clustering with compound
synapses — plus the synthetic dataset generators standing in for the
original (unavailable) recordings.
"""

from .classifier import ClassifierConfig, TNNClassifier
from .clustering import CompoundSynapseNeuron, TemporalClusterer, purity
from .vision import (
    ORIENTATIONS,
    OrientationExperiment,
    bar_dataset,
    oriented_bar,
    run_orientation_experiment,
)
from .liquid import LiquidStateMachine, Readout, sequence_classification_experiment
from .datasets import (
    LabeledVolley,
    embedded_patterns,
    latency_clusters,
    random_pattern,
    two_class_latency,
)
from .trajectory import (
    TrackerResult,
    TrafficConfig,
    TrajectoryTracker,
    run_experiment,
    synthesize_traffic,
    windows_with_labels,
)

__all__ = [
    "ClassifierConfig",
    "CompoundSynapseNeuron",
    "LabeledVolley",
    "LiquidStateMachine",
    "ORIENTATIONS",
    "OrientationExperiment",
    "Readout",
    "TNNClassifier",
    "TemporalClusterer",
    "TrackerResult",
    "TrafficConfig",
    "TrajectoryTracker",
    "bar_dataset",
    "embedded_patterns",
    "oriented_bar",
    "latency_clusters",
    "purity",
    "random_pattern",
    "run_experiment",
    "run_orientation_experiment",
    "sequence_classification_experiment",
    "synthesize_traffic",
    "two_class_latency",
    "windows_with_labels",
]
