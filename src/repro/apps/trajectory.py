"""Bichler-style trajectory tracking TNN (paper Fig. 4).

The paper's scale example: a TNN fed by AER sensors that learns, without
supervision, to track car trajectories on a freeway.  The original DVS
recordings are proprietary; per the reproduction's substitution policy we
synthesize the equivalent workload — moving bright blobs traversing lanes
of a pixel grid — difference-encode it into AER events, and run the same
architecture: AER → volleys → excitatory layer with STDP → WTA lateral
inhibition.

Ground truth (which lane each window's motion belongs to) lets us measure
what Bichler et al. showed qualitatively: after unsupervised training,
individual neurons specialize to individual lanes.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..coding.aer import AERStream
from ..coding.volley import Volley
from ..learning.stdp import Homeostasis, STDPRule, STDPTrainer
from ..neuron.column import Column
from ..neuron.response import ResponseFunction
from ..neuron.wta import first_winner
from .datasets import LabeledVolley


@dataclass
class TrafficConfig:
    """Geometry and dynamics of the synthetic freeway."""

    width: int = 16
    height: int = 8
    n_lanes: int = 2
    blob_size: int = 2
    ticks_per_step: int = 1
    seed: int = 0

    def lane_rows(self, lane: int) -> range:
        """Pixel rows belonging to *lane*."""
        band = self.height // self.n_lanes
        return range(lane * band, lane * band + self.blob_size)


def synthesize_traffic(
    config: TrafficConfig,
    n_vehicles: int,
) -> tuple[AERStream, list[tuple[int, int, int]]]:
    """Generate an AER stream of vehicles crossing the sensor.

    Each vehicle is a bright blob sweeping left→right along one lane, one
    pixel per step.  Returns the stream and the ground-truth schedule:
    ``(start_tick, end_tick, lane)`` per vehicle.  Vehicles are serialized
    (one on screen at a time) so windows have unambiguous labels.
    """
    rng = random.Random(config.seed)
    frames: list[list[list[float]]] = []
    schedule: list[tuple[int, int, int]] = []

    def blank() -> list[list[float]]:
        return [[0.0] * config.width for _ in range(config.height)]

    frames.append(blank())
    tick = 0
    for _ in range(n_vehicles):
        lane = rng.randrange(config.n_lanes)
        start_tick = tick + 1
        for x in range(config.width):
            frame = blank()
            for row in config.lane_rows(lane):
                for dx in range(config.blob_size):
                    col = x + dx
                    if col < config.width:
                        frame[row][col] = 1.0
            frames.append(frame)
            tick += 1
        frames.append(blank())  # vehicle leaves the sensor
        tick += 1
        schedule.append((start_tick, tick, lane))
    stream = AERStream.from_frames(
        frames, delta=0.5, ticks_per_frame=config.ticks_per_step
    )
    return stream, schedule


def windows_with_labels(
    stream: AERStream,
    schedule: Sequence[tuple[int, int, int]],
    *,
    window: int = 4,
) -> list[LabeledVolley]:
    """Slice the stream into volleys labeled with the active lane."""
    labeled: list[LabeledVolley] = []
    for start, volley in stream.volleys(window):
        lane = _lane_at(schedule, start)
        if lane is not None:
            labeled.append(LabeledVolley(volley, lane))
    return labeled


def _lane_at(schedule: Sequence[tuple[int, int, int]], tick: int) -> Optional[int]:
    for start, end, lane in schedule:
        if start <= tick < end:
            return lane
    return None


@dataclass
class TrackerResult:
    """Evaluation of a trained trajectory tracker."""

    lane_of_neuron: dict[int, int]
    lane_purity: float
    coverage: float
    distinct_lanes_claimed: int


class TrajectoryTracker:
    """The Fig. 4 architecture on the synthetic freeway."""

    def __init__(
        self,
        config: Optional[TrafficConfig] = None,
        *,
        n_neurons: Optional[int] = None,
        seed: int = 0,
    ):
        self.config = config or TrafficConfig()
        neurons = n_neurons if n_neurons is not None else self.config.n_lanes * 2
        n_inputs = self.config.width * self.config.height * 2  # ON + OFF
        rng = random.Random(seed)
        initial = np.array(
            [[rng.randint(1, 3) for _ in range(n_inputs)] for _ in range(neurons)],
            dtype=np.int64,
        )
        # Leaky (LIF-like) response, per Bichler's neuron model.
        base = ResponseFunction.piecewise_linear(amplitude=2, rise=1, fall=6)
        active_per_window = self.config.blob_size**2 * 2  # ON+OFF edges
        threshold = max(1, active_per_window * 2)
        self.column = Column(initial, threshold=threshold, base_response=base)
        self.rule = STDPRule(a_plus=2, a_minus=1, ltp_window=6, w_max=7)
        self._seed = seed

    def train(self, data: Sequence[LabeledVolley], *, epochs: int = 3) -> None:
        homeostasis = Homeostasis(self.column, step=4, decay=1)
        trainer = STDPTrainer(
            self.column,
            self.rule,
            rng=random.Random(self._seed + 1),
            homeostasis=homeostasis,
        )
        trainer.train([item.volley for item in data], epochs=epochs)
        homeostasis.reset(self.column)

    def evaluate(self, data: Sequence[LabeledVolley]) -> TrackerResult:
        """Lane purity: do individual neurons claim individual lanes?"""
        wins: dict[int, dict[int, int]] = {}
        decided = 0
        for item in data:
            winner = first_winner(self.column.excitation(tuple(item.volley)))
            if winner is None:
                continue
            decided += 1
            wins.setdefault(winner, {}).setdefault(item.label, 0)
            wins[winner][item.label] += 1
        lane_of_neuron = {
            neuron: max(counts, key=counts.get) for neuron, counts in wins.items()
        }
        pure = sum(
            counts[lane_of_neuron[neuron]]
            for neuron, counts in wins.items()
        )
        total = sum(sum(counts.values()) for counts in wins.values())
        return TrackerResult(
            lane_of_neuron=lane_of_neuron,
            lane_purity=pure / total if total else 0.0,
            coverage=decided / len(data) if data else 0.0,
            distinct_lanes_claimed=len(set(lane_of_neuron.values())),
        )


def run_experiment(
    *,
    n_lanes: int = 2,
    n_vehicles_train: int = 12,
    n_vehicles_test: int = 6,
    window: int = 4,
    seed: int = 0,
) -> TrackerResult:
    """End-to-end: synthesize traffic, train, evaluate on fresh traffic."""
    config = TrafficConfig(n_lanes=n_lanes, seed=seed)
    stream, schedule = synthesize_traffic(config, n_vehicles_train)
    train_data = windows_with_labels(stream, schedule, window=window)
    test_stream, test_schedule = synthesize_traffic(
        TrafficConfig(n_lanes=n_lanes, seed=seed + 999), n_vehicles_test
    )
    test_data = windows_with_labels(test_stream, test_schedule, window=window)

    tracker = TrajectoryTracker(config, seed=seed)
    tracker.train(train_data)
    return tracker.evaluate(test_data)
