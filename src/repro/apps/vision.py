"""Emergent orientation selectivity (§II.C's visual-feature results).

The flagship result of the STDP-TNN literature the paper surveys
(Guyonneau/Masquelier/Thorpe, Kheradpisheh et al.): neurons exposed to
natural-image-like input through temporal coding *develop oriented
receptive fields* without supervision.  This module reproduces the
laboratory version: oriented bars, latency-encoded (contrast → earliest
spike), drive an STDP + WTA column; after training, individual neurons
respond selectively to individual orientations, and their weight vectors
*are* oriented filters.

Everything is built from the library's existing parts — encoder, column,
STDP with homeostasis — composed the way the surveyed systems are.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..coding.encoders import LatencyEncoder
from ..coding.volley import Volley
from ..learning.stdp import Homeostasis, STDPRule, STDPTrainer
from ..neuron.column import Column
from ..neuron.response import ResponseFunction

#: The four canonical orientations, in degrees.
ORIENTATIONS = (0, 45, 90, 135)


def oriented_bar(
    size: int,
    orientation: int,
    *,
    offset: int = 0,
    thickness: int = 1,
) -> np.ndarray:
    """A ``size``×``size`` image of a bright bar at *orientation* degrees.

    *offset* shifts the bar perpendicular to its direction (position
    jitter); *thickness* widens it.  Intensities are 0/1.
    """
    if orientation not in ORIENTATIONS:
        raise ValueError(f"orientation must be one of {ORIENTATIONS}")
    image = np.zeros((size, size))
    center = size // 2 + offset
    for i in range(size):
        for j in range(size):
            if orientation == 0:  # horizontal bar
                distance = i - center
            elif orientation == 90:  # vertical bar
                distance = j - center
            elif orientation == 45:  # anti-diagonal
                distance = (i + j) - (size - 1) - offset
            else:  # 135: main diagonal
                distance = (i - j) - offset
            if abs(distance) < thickness:
                image[i, j] = 1.0
    return image


@dataclass
class BarSample:
    """One labeled presentation."""

    volley: Volley
    orientation: int


def bar_dataset(
    *,
    size: int = 7,
    presentations: int = 80,
    max_offset: int = 1,
    noise: float = 0.05,
    resolution_bits: int = 3,
    seed: int = 0,
) -> list[BarSample]:
    """Latency-encoded oriented bars with position jitter and pixel noise."""
    rng = random.Random(seed)
    encoder = LatencyEncoder(
        resolution_bits=resolution_bits, silence_threshold=0.2
    )
    samples: list[BarSample] = []
    for _ in range(presentations):
        orientation = rng.choice(ORIENTATIONS)
        offset = rng.randint(-max_offset, max_offset)
        image = oriented_bar(size, orientation, offset=offset)
        noisy = image.flatten()
        for i in range(noisy.size):
            if rng.random() < noise:
                noisy[i] = 1.0 - noisy[i]
        samples.append(
            BarSample(encoder.encode(noisy.tolist()), orientation)
        )
    return samples


class OrientationExperiment:
    """Unsupervised emergence of orientation detectors."""

    def __init__(
        self,
        *,
        size: int = 7,
        n_neurons: int = 8,
        max_weight: int = 7,
        seed: int = 0,
        base_response: Optional[ResponseFunction] = None,
    ):
        self.size = size
        rng = random.Random(seed)
        n_inputs = size * size
        # A *rising* response: with every bar pixel spiking at once, the
        # potential ramps with the response, so the crossing time encodes
        # total drive — strong (well-matched, well-trained) neurons fire
        # earlier.  A flat step response would make every neuron fire at
        # t=0 and WTA could never discriminate.
        base = base_response or ResponseFunction.piecewise_linear(
            amplitude=4, rise=4, fall=8
        )
        weights = np.array(
            [
                [rng.randint(1, 3) for _ in range(n_inputs)]
                for _ in range(n_neurons)
            ],
            dtype=np.int64,
        )
        # A bar lights ~size pixels; a trained neuron (weights near w_max)
        # crosses within a step or two, an untrained one much later.
        threshold = max(1, size * 4)
        self.column = Column(weights, threshold=threshold, base_response=base)
        self.rule = STDPRule(a_plus=2, a_minus=1, ltp_window=6, w_max=max_weight)
        self._seed = seed

    def train(self, samples: Sequence[BarSample], *, epochs: int = 3) -> None:
        homeostasis = Homeostasis(self.column, step=3, decay=1)
        trainer = STDPTrainer(
            self.column,
            self.rule,
            rng=random.Random(self._seed + 1),
            homeostasis=homeostasis,
        )
        trainer.train([s.volley for s in samples], epochs=epochs)
        homeostasis.reset(self.column)

    # -- analysis ----------------------------------------------------------
    def preferred_orientations(self) -> dict[int, int]:
        """Each neuron's best orientation by earliest (clean-bar) response."""
        encoder = LatencyEncoder(resolution_bits=3, silence_threshold=0.2)
        preferences: dict[int, int] = {}
        for neuron_index in range(self.column.n_neurons):
            best: tuple = ()
            for orientation in ORIENTATIONS:
                image = oriented_bar(self.size, orientation)
                volley = encoder.encode(image.flatten().tolist())
                t = self.column.neurons[neuron_index].fire_time(tuple(volley))
                key = (t, orientation)
                if not best or key < best:
                    best = key
            if best and best[0] != float("inf"):
                preferences[neuron_index] = best[1]
        return preferences

    def selectivity_report(
        self, samples: Sequence[BarSample]
    ) -> tuple[float, int]:
        """(purity, distinct orientations claimed) over labeled samples.

        Ties credit every co-winner: two neurons tuned to the same
        orientation legitimately fire together, which is redundancy, not
        ambiguity.
        """
        from ..neuron.wta import winners

        wins: dict[int, dict[int, int]] = {}
        for sample in samples:
            for winner in winners(self.column.excitation(tuple(sample.volley))):
                wins.setdefault(winner, {}).setdefault(sample.orientation, 0)
                wins[winner][sample.orientation] += 1
        if not wins:
            return 0.0, 0
        pure = sum(max(counts.values()) for counts in wins.values())
        total = sum(sum(counts.values()) for counts in wins.values())
        claimed = {
            max(counts, key=counts.get) for counts in wins.values()
        }
        return pure / total, len(claimed)

    def receptive_field(self, neuron_index: int) -> np.ndarray:
        """The neuron's weight vector reshaped as an image — after
        training it should *look like* its preferred bar."""
        return self.column.weights[neuron_index].reshape(self.size, self.size)

    def field_orientation_match(self, neuron_index: int) -> Optional[int]:
        """Which ideal bar correlates best with the receptive field."""
        field = self.receptive_field(neuron_index).astype(float)
        field = field - field.mean()
        if not field.any():
            return None
        best_orientation = None
        best_score = -np.inf
        for orientation in ORIENTATIONS:
            template = oriented_bar(self.size, orientation).astype(float)
            template = template - template.mean()
            score = float((field * template).sum())
            if score > best_score:
                best_score = score
                best_orientation = orientation
        return best_orientation


def run_orientation_experiment(
    *, seed: int = 0, presentations: int = 80, epochs: int = 3
) -> tuple[float, int]:
    """End-to-end: dataset → training → (purity, orientations claimed)."""
    samples = bar_dataset(presentations=presentations, seed=seed)
    experiment = OrientationExperiment(seed=seed)
    experiment.train(samples, epochs=epochs)
    fresh = bar_dataset(presentations=presentations // 2, seed=seed + 999)
    return experiment.selectivity_report(fresh)
