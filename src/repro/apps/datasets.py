"""Synthetic temporal datasets for the applications and benchmarks.

The paper's applications consume precisely timed spike volleys; these
generators produce controlled workloads with ground truth:

* :func:`embedded_patterns` — the Guyonneau/Masquelier setting: a few
  fixed latency patterns, presented with timing jitter, line dropout, and
  background noise.  The classic STDP convergence workload.
* :func:`latency_clusters` — cluster centers in latency space with
  per-presentation jitter, for RBF-like clustering.
* :func:`two_class_latency` — linearly separable ⊕/⊖ volley sets for the
  tempotron.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.value import INF, Infinity, Time
from ..coding.volley import Volley


@dataclass(frozen=True)
class LabeledVolley:
    """A volley with its generating class index."""

    volley: Volley
    label: int


def _jittered(
    base: tuple[Time, ...],
    rng: random.Random,
    *,
    jitter: int,
    dropout: float,
    noise_lines: int,
    window: int,
) -> Volley:
    times: list[Time] = []
    for t in base:
        if isinstance(t, Infinity):
            times.append(INF)
        elif rng.random() < dropout:
            times.append(INF)
        else:
            moved = int(t) + rng.randint(-jitter, jitter)
            times.append(max(0, min(window - 1, moved)))
    silent = [i for i, t in enumerate(times) if isinstance(t, Infinity)]
    rng.shuffle(silent)
    for i in silent[:noise_lines]:
        times[i] = rng.randint(0, window - 1)
    return Volley(times)


def random_pattern(
    n_lines: int,
    *,
    active_lines: int,
    window: int,
    rng: random.Random,
) -> tuple[Time, ...]:
    """A base pattern: *active_lines* random lines spiking in the window."""
    if not 0 <= active_lines <= n_lines:
        raise ValueError("active_lines must be within the line count")
    chosen = rng.sample(range(n_lines), active_lines)
    times: list[Time] = [INF] * n_lines
    for line in chosen:
        times[line] = rng.randint(0, window - 1)
    return tuple(times)


def embedded_patterns(
    *,
    n_lines: int = 32,
    n_patterns: int = 3,
    presentations: int = 60,
    active_lines: int = 12,
    window: int = 8,
    jitter: int = 1,
    dropout: float = 0.1,
    noise_lines: int = 2,
    seed: int = 0,
) -> tuple[list[tuple[Time, ...]], list[LabeledVolley]]:
    """Fixed patterns presented noisily — the STDP convergence workload.

    Returns ``(base_patterns, labeled_presentations)``.  Each
    presentation is a jittered/dropped/noise-polluted copy of one base
    pattern, labeled with the pattern index.
    """
    rng = random.Random(seed)
    bases = [
        random_pattern(n_lines, active_lines=active_lines, window=window, rng=rng)
        for _ in range(n_patterns)
    ]
    data = []
    for _ in range(presentations):
        label = rng.randrange(n_patterns)
        volley = _jittered(
            bases[label],
            rng,
            jitter=jitter,
            dropout=dropout,
            noise_lines=noise_lines,
            window=window,
        )
        data.append(LabeledVolley(volley, label))
    return bases, data


def latency_clusters(
    *,
    n_lines: int = 8,
    n_clusters: int = 3,
    presentations: int = 90,
    window: int = 8,
    jitter: int = 1,
    seed: int = 0,
) -> tuple[list[tuple[int, ...]], list[LabeledVolley]]:
    """Dense latency vectors around cluster centers (all lines spike).

    The RBF-like setting of Natschläger & Ruf / Bohte: each center is a
    full latency vector; presentations jitter every line independently.
    """
    rng = random.Random(seed)
    centers = [
        tuple(rng.randint(0, window - 1) for _ in range(n_lines))
        for _ in range(n_clusters)
    ]
    data = []
    for _ in range(presentations):
        label = rng.randrange(n_clusters)
        times = [
            max(0, min(window - 1, t + rng.randint(-jitter, jitter)))
            for t in centers[label]
        ]
        data.append(LabeledVolley(Volley(times), label))
    return centers, data


def two_class_latency(
    *,
    n_lines: int = 16,
    per_class: int = 20,
    window: int = 8,
    active_lines: int = 8,
    jitter: int = 1,
    seed: int = 0,
) -> tuple[list[Volley], list[bool]]:
    """⊕/⊖ volleys from two distinct base patterns (tempotron workload)."""
    rng = random.Random(seed)
    plus = random_pattern(n_lines, active_lines=active_lines, window=window, rng=rng)
    minus = random_pattern(n_lines, active_lines=active_lines, window=window, rng=rng)
    volleys: list[Volley] = []
    labels: list[bool] = []
    for _ in range(per_class):
        volleys.append(
            _jittered(plus, rng, jitter=jitter, dropout=0.0, noise_lines=0, window=window)
        )
        labels.append(True)
        volleys.append(
            _jittered(minus, rng, jitter=jitter, dropout=0.0, noise_lines=0, window=window)
        )
        labels.append(False)
    return volleys, labels
