"""An end-to-end TNN pattern classifier (§II.C's common architecture).

Encoder → excitatory column → WTA readout, trained with unsupervised
STDP: the pipeline shared by Masquelier/Thorpe, Kheradpisheh et al., and
the paper's Fig. 4 example.  Because training is unsupervised, class
labels are attached afterwards by majority vote over a labeled calibration
set (the standard evaluation protocol for STDP-trained TNNs).
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..coding.volley import Volley
from ..learning.stdp import LearningRule, STDPRule, STDPTrainer
from ..neuron.column import Column
from ..neuron.response import ResponseFunction
from ..neuron.wta import first_winner
from .datasets import LabeledVolley


@dataclass
class ClassifierConfig:
    """Knobs of the TNN classifier."""

    n_neurons: int = 6
    threshold_fraction: float = 0.5
    max_weight: int = 7
    wta_window: int = 1
    epochs: int = 4
    seed: int = 0


class TNNClassifier:
    """Unsupervised-STDP column with majority-vote label assignment."""

    def __init__(
        self,
        n_inputs: int,
        *,
        config: Optional[ClassifierConfig] = None,
        rule: Optional[LearningRule] = None,
        base_response: Optional[ResponseFunction] = None,
    ):
        self.config = config or ClassifierConfig()
        self.rule = rule or STDPRule(w_max=self.config.max_weight)
        base = base_response or ResponseFunction.step(amplitude=1, width=8)
        rng = random.Random(self.config.seed)
        initial = np.array(
            [
                [
                    rng.randint(1, max(1, self.config.max_weight // 2))
                    for _ in range(n_inputs)
                ]
                for _ in range(self.config.n_neurons)
            ],
            dtype=np.int64,
        )
        # Threshold as a fraction of a typical pattern's maximum drive.
        drive = base.r_max * self.config.max_weight * n_inputs
        threshold = max(1, round(drive * self.config.threshold_fraction * 0.25))
        self.column = Column(
            initial,
            threshold=threshold,
            base_response=base,
            wta_window=self.config.wta_window,
        )
        self.neuron_labels: dict[int, int] = {}
        self._rng = rng

    # -- training --------------------------------------------------------------
    def fit(self, data: Sequence[LabeledVolley]) -> None:
        """Unsupervised STDP training followed by label calibration."""
        trainer = STDPTrainer(
            self.column, self.rule, rng=random.Random(self.config.seed + 1)
        )
        trainer.train(
            [item.volley for item in data], epochs=self.config.epochs
        )
        self.calibrate(data)

    def calibrate(self, data: Sequence[LabeledVolley]) -> None:
        """Assign each neuron the majority label of the volleys it wins."""
        votes: dict[int, Counter] = {
            i: Counter() for i in range(self.column.n_neurons)
        }
        for item in data:
            winner = first_winner(self.column.excitation(tuple(item.volley)))
            if winner is not None:
                votes[winner][item.label] += 1
        self.neuron_labels = {
            neuron: counts.most_common(1)[0][0]
            for neuron, counts in votes.items()
            if counts
        }

    # -- inference --------------------------------------------------------------
    def predict(self, volley: Volley) -> Optional[int]:
        """Predicted class, or None when the column is silent/tied."""
        winner = first_winner(self.column.excitation(tuple(volley)))
        if winner is None:
            return None
        return self.neuron_labels.get(winner)

    def accuracy(self, data: Sequence[LabeledVolley]) -> float:
        """Fraction of volleys classified correctly (None counts as wrong)."""
        if not data:
            return 1.0
        hits = sum(
            1 for item in data if self.predict(item.volley) == item.label
        )
        return hits / len(data)

    def coverage(self, data: Sequence[LabeledVolley]) -> float:
        """Fraction of volleys on which the column makes *any* decision."""
        if not data:
            return 1.0
        decided = sum(
            1 for item in data if self.predict(item.volley) is not None
        )
        return decided / len(data)
