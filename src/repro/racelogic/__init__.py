"""Generalized race logic: the s-t algebra in off-the-shelf CMOS (§V).

Edge signals (:mod:`~repro.racelogic.signals`), the Fig. 16 gate library
(:mod:`~repro.racelogic.gates`), netlists
(:mod:`~repro.racelogic.circuit`), a cycle-accurate digital simulator
(:mod:`~repro.racelogic.digital`), the s-t → GRL compiler
(:mod:`~repro.racelogic.compile`), race-logic shortest paths
(:mod:`~repro.racelogic.shortest_path`), and transition-count energy
accounting (:mod:`~repro.racelogic.energy`).
"""

from .asynchronous import (
    AsyncCircuit,
    AsyncGate,
    AsyncResult,
    AsyncSimulator,
    compile_async,
    run_async,
)
from .circuit import Circuit, CircuitBuilder, CircuitError, Gate
from .compile import GRLExecutor, compile_network
from .digital import DigitalResult, DigitalSimulator, run_circuit
from .energy import (
    CommunicationCost,
    EnergyReport,
    communication_sweep,
    measure_energy,
)
from .export import (
    circuit_dumps,
    circuit_from_dict,
    circuit_loads,
    circuit_to_dict,
    save_verilog,
    to_verilog,
)
from .gates import and_gate, dff_chain, lt_latch, lt_unlatched_waveform, not_gate, or_gate
from .shortest_path import (
    WeightedDAG,
    build_race_network,
    dijkstra,
    race_shortest_paths,
    race_shortest_paths_digital,
    random_dag,
)
from .signals import EdgeSignal, waveform_from_levels

__all__ = [
    "AsyncCircuit",
    "AsyncGate",
    "AsyncResult",
    "AsyncSimulator",
    "Circuit",
    "compile_async",
    "run_async",
    "CircuitBuilder",
    "CircuitError",
    "CommunicationCost",
    "DigitalResult",
    "DigitalSimulator",
    "EdgeSignal",
    "EnergyReport",
    "GRLExecutor",
    "Gate",
    "WeightedDAG",
    "and_gate",
    "build_race_network",
    "circuit_dumps",
    "circuit_from_dict",
    "circuit_loads",
    "circuit_to_dict",
    "communication_sweep",
    "compile_network",
    "dff_chain",
    "dijkstra",
    "lt_latch",
    "lt_unlatched_waveform",
    "measure_energy",
    "not_gate",
    "or_gate",
    "race_shortest_paths",
    "race_shortest_paths_digital",
    "random_dag",
    "run_circuit",
    "save_verilog",
    "to_verilog",
    "waveform_from_levels",
]
