"""Edge signals: the GRL encoding of time values (paper §V.A).

Generalized race logic communicates via 1→0 transitions in logic levels:
a wire idles high and falls at the moment its value "happens"; a wire
that never falls carries ``∞``.  :class:`EdgeSignal` is the waveform-level
view of one wire — level as a function of the cycle — plus conversions to
and from s-t times.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.value import INF, Infinity, Time, check_time


@dataclass(frozen=True)
class EdgeSignal:
    """A monotone falling waveform: high before *fall_time*, low after.

    The s-t value of the signal *is* its fall time; ``∞`` (no transition)
    is represented by ``fall_time = INF``.
    """

    fall_time: Time

    def __post_init__(self) -> None:
        check_time(self.fall_time, name="fall_time")

    @classmethod
    def from_time(cls, value: Time) -> "EdgeSignal":
        return cls(check_time(value))

    @classmethod
    def never(cls) -> "EdgeSignal":
        return cls(INF)

    def level(self, cycle: int) -> int:
        """Logic level at *cycle*: 1 before the fall, 0 at and after."""
        if cycle < 0:
            return 1
        return 0 if self.fall_time <= cycle else 1

    @property
    def transitions(self) -> int:
        """Toggle count over the whole computation (0 or 1).

        The minimal-transition property of §VI: each wire switches at
        most once per computation.
        """
        return 0 if isinstance(self.fall_time, Infinity) else 1

    def to_time(self) -> Time:
        return self.fall_time

    def trace(self, horizon: int) -> list[int]:
        """Levels for cycles ``0..horizon`` (for waveform dumps)."""
        return [self.level(c) for c in range(horizon + 1)]

    def __repr__(self) -> str:
        return f"EdgeSignal(falls at {self.fall_time})"


def waveform_from_levels(levels: Sequence[int]) -> EdgeSignal:
    """Recover the edge signal from a sampled level trace.

    Validates GRL discipline: the trace must be monotone non-increasing
    (1...1 0...0); a rise mid-trace violates the single-transition
    encoding and raises ``ValueError``.
    """
    fall: Time = INF
    previous = 1
    for cycle, level in enumerate(levels):
        if level not in (0, 1):
            raise ValueError(f"level at cycle {cycle} must be 0 or 1")
        if level > previous:
            raise ValueError(
                f"signal rises at cycle {cycle}: not a valid GRL waveform"
            )
        if level == 0 and previous == 1:
            fall = cycle
        previous = level
    return EdgeSignal(fall)
