"""Transition-count energy accounting for GRL (paper §V.B, §VI).

Dynamic energy in CMOS is proportional to signal transitions.  The paper
conjectures direct s-t implementations are intrinsically efficient
because every gate switches at most once per computation — and with
sparse codings most switch not at all.  The flip side it also notes: the
clocked shift registers that implement ``inc`` may cost significantly
more.

This module measures all of it on compiled circuits: per-run toggle
counts, the DFF clock-energy estimate, sparse-vs-dense comparisons, and
the direct (unary) vs indirect (binary) communication trade-off model of
§V.C.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from ..core.value import Time
from ..network.graph import Network
from .compile import GRLExecutor


@dataclass(frozen=True)
class EnergyReport:
    """Activity summary of one or more runs of a compiled network."""

    runs: int
    gate_count: int
    flipflop_count: int
    total_transitions: int
    total_cycles: int

    @property
    def transitions_per_run(self) -> float:
        return self.total_transitions / self.runs if self.runs else 0.0

    @property
    def activity_factor(self) -> float:
        """Mean transitions per gate per run — at most ~1 for GRL data
        wires (the minimal-transition property), plus latch internals."""
        if not self.runs or not self.gate_count:
            return 0.0
        return self.total_transitions / (self.runs * self.gate_count)

    @property
    def dff_clock_events(self) -> int:
        """Clock loads on shift registers: flip-flops × cycles.

        The paper's caveat: even idle DFFs burn clock energy every cycle.
        """
        return self.flipflop_count * self.total_cycles

    def __str__(self) -> str:
        return (
            f"{self.runs} run(s): {self.transitions_per_run:.1f} "
            f"transitions/run over {self.gate_count} gates (activity "
            f"{self.activity_factor:.3f}), {self.flipflop_count} DFFs, "
            f"{self.dff_clock_events} clock events"
        )


def measure_energy(
    network: Network,
    input_sets: Sequence[Mapping[str, Time]],
    *,
    params: Mapping[str, Time] | None = None,
    horizon: int | None = None,
) -> EnergyReport:
    """Compile *network* and measure switching activity over the inputs."""
    executor = GRLExecutor(network)
    transitions = 0
    cycles = 0
    for inputs in input_sets:
        result = executor.run(inputs, params=params, horizon=horizon)
        transitions += result.transition_count
        cycles += result.cycles_simulated
    return EnergyReport(
        runs=len(input_sets),
        gate_count=len(executor.circuit),
        flipflop_count=executor.circuit.flipflop_count,
        total_transitions=transitions,
        total_cycles=cycles,
    )


@dataclass(frozen=True)
class CommunicationCost:
    """Direct (unary/temporal) vs indirect (binary) channel cost (§V.C).

    For one value at *resolution_bits* resolution:

    * direct: at most 1 transition, but the message window lasts
      ``2^bits`` unit times;
    * indirect: ``bits`` wires (or serialized slots) toggling ~half the
      time, delivered in one word time.
    """

    resolution_bits: int

    @property
    def direct_transitions(self) -> int:
        return 1

    @property
    def direct_message_time(self) -> int:
        return 1 << self.resolution_bits

    @property
    def indirect_transitions(self) -> float:
        return self.resolution_bits / 2.0

    @property
    def indirect_message_time(self) -> int:
        return 1

    @property
    def energy_advantage(self) -> float:
        """Indirect/direct transition ratio: grows linearly with bits."""
        return self.indirect_transitions / self.direct_transitions

    @property
    def time_penalty(self) -> float:
        """Direct/indirect latency ratio: grows exponentially with bits.

        The crossover argument for why direct s-t implementations only
        make sense for 3–4 bit data.
        """
        return self.direct_message_time / self.indirect_message_time


def communication_sweep(max_bits: int) -> list[CommunicationCost]:
    """The §V.C trade-off for resolutions 1..max_bits."""
    if max_bits < 1:
        raise ValueError("max_bits must be at least 1")
    return [CommunicationCost(bits) for bits in range(1, max_bits + 1)]
