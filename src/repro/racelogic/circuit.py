"""GRL circuit netlists.

A :class:`Circuit` is a feedforward netlist of digital gates — the
off-the-shelf-CMOS target of the paper's §V.  Gate kinds:

* ``input`` — a primary wire driven by the testbench,
* ``and``/``or`` — n-ary combinational gates (zero delay),
* ``not`` — inverter (only legal feeding an ``lt`` latch's b-side or in
  testbench scaffolding; the builder's ``lt`` emits it internally),
* ``dff`` — a clocked flip-flop initialized high (one cycle delay),
* ``lt`` — the latched strictly-before gate of Fig. 16 (a, b inputs,
  internal latch state, implicit reset before every run).

The same id-ordering discipline as space-time networks applies: sources
precede consumers, so gate order is a topological order and the
cycle-accurate simulator can sweep gates once per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

GATE_KINDS = ("input", "and", "or", "not", "dff", "lt")


class CircuitError(ValueError):
    """Raised for malformed netlists or bad references."""


@dataclass(frozen=True)
class Gate:
    """One gate in a netlist."""

    id: int
    kind: str
    sources: tuple[int, ...] = ()
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in GATE_KINDS:
            raise CircuitError(f"unknown gate kind {self.kind!r}")
        if self.kind == "input":
            if self.sources:
                raise CircuitError("input gates have no sources")
            if not self.name:
                raise CircuitError("input gates need a name")
        else:
            if not self.sources:
                raise CircuitError(f"{self.kind} gate needs sources")
            if any(s >= self.id for s in self.sources):
                raise CircuitError("netlist must be feedforward")
        if self.kind in ("not", "dff") and len(self.sources) != 1:
            raise CircuitError(f"{self.kind} takes exactly one source")
        if self.kind == "lt" and len(self.sources) != 2:
            raise CircuitError("lt takes exactly (a, b)")


class Circuit:
    """An immutable GRL netlist with named inputs and outputs."""

    def __init__(self, gates, outputs, *, name: Optional[str] = None):
        self.gates: tuple[Gate, ...] = tuple(gates)
        self.name = name or "circuit"
        for i, gate in enumerate(self.gates):
            if gate.id != i:
                raise CircuitError("gate ids must be dense and ordered")
        self.outputs: dict[str, int] = dict(outputs)
        for out_name, gid in self.outputs.items():
            if not 0 <= gid < len(self.gates):
                raise CircuitError(f"output {out_name!r} references gate {gid}")
        self.input_ids: dict[str, int] = {
            g.name: g.id for g in self.gates if g.kind == "input"
        }

    @property
    def input_names(self) -> list[str]:
        return list(self.input_ids)

    @property
    def output_names(self) -> list[str]:
        return list(self.outputs)

    def __len__(self) -> int:
        return len(self.gates)

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for gate in self.gates:
            counts[gate.kind] = counts.get(gate.kind, 0) + 1
        return counts

    @property
    def flipflop_count(self) -> int:
        """Number of DFFs — the paper's noted energy cost of GRL delays."""
        return self.counts_by_kind().get("dff", 0)

    def __repr__(self) -> str:
        kinds = ", ".join(f"{k}:{v}" for k, v in sorted(self.counts_by_kind().items()))
        return f"Circuit({self.name!r}: {kinds})"


class CircuitBuilder:
    """Fluent netlist construction mirroring NetworkBuilder."""

    def __init__(self, name: Optional[str] = None):
        self.name = name or "circuit"
        self._gates: list[Gate] = []
        self._outputs: dict[str, int] = {}
        self._input_names: set[str] = set()

    def _add(self, kind: str, sources: tuple[int, ...] = (), name: Optional[str] = None) -> int:
        gate = Gate(len(self._gates), kind, sources=sources, name=name)
        self._gates.append(gate)
        return gate.id

    def _check(self, gid: int) -> int:
        if not 0 <= gid < len(self._gates):
            raise CircuitError(f"invalid gate reference {gid}")
        return gid

    def input(self, name: str) -> int:
        if name in self._input_names:
            raise CircuitError(f"duplicate input {name!r}")
        self._input_names.add(name)
        return self._add("input", name=name)

    def and_(self, *sources: int) -> int:
        srcs = tuple(self._check(s) for s in sources)
        if len(srcs) == 1:
            return srcs[0]
        return self._add("and", srcs)

    def or_(self, *sources: int) -> int:
        srcs = tuple(self._check(s) for s in sources)
        if len(srcs) == 1:
            return srcs[0]
        return self._add("or", srcs)

    def not_(self, source: int) -> int:
        return self._add("not", (self._check(source),))

    def dff(self, source: int) -> int:
        return self._add("dff", (self._check(source),))

    def delay(self, source: int, cycles: int) -> int:
        """A shift register: *cycles* DFFs in series."""
        if cycles < 0:
            raise CircuitError("delay must be non-negative")
        gid = self._check(source)
        for _ in range(cycles):
            gid = self.dff(gid)
        return gid

    def lt(self, a: int, b: int) -> int:
        return self._add("lt", (self._check(a), self._check(b)))

    def output(self, name: str, source: int) -> None:
        if name in self._outputs:
            raise CircuitError(f"duplicate output {name!r}")
        self._outputs[name] = self._check(source)

    def build(self) -> Circuit:
        if not self._outputs:
            raise CircuitError("circuit has no outputs")
        return Circuit(self._gates, self._outputs, name=self.name)
