"""Asynchronous (delay-based) GRL — the paper's §V.B alternative.

Instead of clocked shift registers, a "more direct form of GRL ... relies
on implementing precise physical delays, say in the wires or
intentionally inserted non-clocked delay elements.  This approach would
have to account for individual gate latencies as well."

This module implements that variant as an event-driven gate simulation:

* ``inc`` compiles to a pure transport-delay element (no clock at all),
* combinational gates (AND/OR/NOT/LT) carry a configurable intrinsic
  latency *gate_delay* — 0 models the idealization, nonzero models real
  silicon,

so the paper's caveat becomes measurable: with ``gate_delay = 0`` the
asynchronous circuit reproduces the algebra exactly; with nonzero gate
latencies, outputs skew by path-dependent amounts unless the delays are
folded into the design (the reason the clocked formulation quantizes time
to cycles that cover all gate delays).
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Optional

from ..core.value import INF, Infinity, Time, check_time
from ..network.graph import Network
from .circuit import CircuitError

ASYNC_KINDS = ("input", "and", "or", "not", "delay", "lt")


@dataclass(frozen=True)
class AsyncGate:
    """One gate of an asynchronous netlist.

    *delay* is the transport delay from an input change to the output
    change: the designed delay for ``delay`` elements, the parasitic gate
    latency for the rest.
    """

    id: int
    kind: str
    sources: tuple[int, ...] = ()
    delay: int = 0
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ASYNC_KINDS:
            raise CircuitError(f"unknown async gate kind {self.kind!r}")
        if self.kind == "input":
            if self.sources or not self.name:
                raise CircuitError("input gates take no sources and need a name")
        elif not self.sources:
            raise CircuitError(f"{self.kind} gate needs sources")
        if any(s >= self.id for s in self.sources):
            raise CircuitError("netlist must be feedforward")
        if self.delay < 0:
            raise CircuitError("delays must be non-negative")
        if self.kind in ("not", "delay") and len(self.sources) != 1:
            raise CircuitError(f"{self.kind} takes exactly one source")
        if self.kind == "lt" and len(self.sources) != 2:
            raise CircuitError("lt takes exactly (a, b)")


class AsyncCircuit:
    """An immutable asynchronous GRL netlist."""

    def __init__(self, gates, outputs, *, name: Optional[str] = None):
        self.gates: tuple[AsyncGate, ...] = tuple(gates)
        self.name = name or "async-circuit"
        for i, gate in enumerate(self.gates):
            if gate.id != i:
                raise CircuitError("gate ids must be dense and ordered")
        self.outputs: dict[str, int] = dict(outputs)
        for out_name, gid in self.outputs.items():
            if not 0 <= gid < len(self.gates):
                raise CircuitError(f"output {out_name!r} references gate {gid}")
        self.input_ids: dict[str, int] = {
            g.name: g.id for g in self.gates if g.kind == "input"
        }

    def __len__(self) -> int:
        return len(self.gates)

    @property
    def total_designed_delay(self) -> int:
        return sum(g.delay for g in self.gates if g.kind == "delay")

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for gate in self.gates:
            counts[gate.kind] = counts.get(gate.kind, 0) + 1
        return counts

    def __repr__(self) -> str:
        kinds = ", ".join(f"{k}:{v}" for k, v in sorted(self.counts_by_kind().items()))
        return f"AsyncCircuit({self.name!r}: {kinds})"


def compile_async(
    network: Network, *, gate_delay: int = 0, name: Optional[str] = None
) -> AsyncCircuit:
    """Compile an s-t network to an asynchronous (clock-free) netlist.

    ``inc`` becomes a designed transport delay; min/max/lt become gates
    with intrinsic latency *gate_delay* (0 = ideal).
    """
    gates: list[AsyncGate] = []
    wire: dict[int, int] = {}

    def add(kind: str, sources: tuple[int, ...] = (), *, delay: int = 0, gname=None) -> int:
        gate = AsyncGate(len(gates), kind, sources=sources, delay=delay, name=gname)
        gates.append(gate)
        return gate.id

    for node in network.nodes:
        if node.kind in ("input", "param"):
            wire[node.id] = add("input", gname=node.name)
        elif node.kind == "inc":
            wire[node.id] = add(
                "delay", (wire[node.sources[0]],), delay=node.amount
            )
        elif node.kind == "min":
            wire[node.id] = add(
                "and", tuple(wire[s] for s in node.sources), delay=gate_delay
            )
        elif node.kind == "max":
            wire[node.id] = add(
                "or", tuple(wire[s] for s in node.sources), delay=gate_delay
            )
        else:  # lt
            a, b = node.sources
            wire[node.id] = add("lt", (wire[a], wire[b]), delay=gate_delay)
    outputs = {name_: wire[nid] for name_, nid in network.outputs.items()}
    return AsyncCircuit(gates, outputs, name=name or f"async-{network.name}")


@dataclass
class AsyncResult:
    """Outcome of one asynchronous run."""

    outputs: dict[str, Time]
    fall_times: list[Time]
    transition_count: int
    settle_time: int


class AsyncSimulator:
    """Event-driven simulation: levels change only when events fire.

    Within one timestamp, gates are evaluated in topological order so
    zero-delay gates settle combinationally (as an ideal circuit would)
    and the LT latch sees same-instant b-falls before deciding.
    """

    def __init__(self, circuit: AsyncCircuit):
        self.circuit = circuit

    def run(self, inputs: Mapping[str, Time]) -> AsyncResult:
        circuit = self.circuit
        missing = set(circuit.input_ids) - set(inputs)
        if missing:
            raise CircuitError(f"unbound inputs: {sorted(missing)}")

        n = len(circuit.gates)
        level = [1] * n
        # Settle pass: all inputs high, latches reset high, NOTs low.
        for gate in circuit.gates:
            if gate.kind == "not":
                level[gate.id] = 1 - level[gate.sources[0]]
            elif gate.kind == "and":
                level[gate.id] = int(all(level[s] for s in gate.sources))
            elif gate.kind == "or":
                level[gate.id] = int(any(level[s] for s in gate.sources))
        lt_state = {g.id: 1 for g in circuit.gates if g.kind == "lt"}
        fall_times: list[Time] = [INF] * n
        transitions = 0
        # scheduled[g] = the level g will eventually take (for dedup).
        eventual = list(level)
        heap: list[tuple[int, int, int, int]] = []  # (time, gate, level, seq)
        seq = 0

        for gname, gid in circuit.input_ids.items():
            fall = check_time(inputs[gname], name=gname)
            if not isinstance(fall, Infinity):
                heapq.heappush(heap, (int(fall), gid, 0, seq))
                eventual[gid] = 0
                seq += 1

        settle_time = 0
        while heap:
            t = heap[0][0]
            settle_time = t
            changed = False
            while heap and heap[0][0] == t:
                _, gid, new_level, _ = heapq.heappop(heap)
                if level[gid] != new_level:
                    level[gid] = new_level
                    transitions += 1
                    changed = True
                    if new_level == 0 and isinstance(fall_times[gid], Infinity):
                        fall_times[gid] = t
            if not changed:
                continue
            # Topological sweep: settle zero-delay logic, schedule the rest.
            for gate in circuit.gates:
                if gate.kind in ("input",):
                    continue
                if gate.kind == "delay":
                    target = level[gate.sources[0]]
                    if target != eventual[gate.id]:
                        eventual[gate.id] = target
                        heapq.heappush(
                            heap, (t + gate.delay, gate.id, target, seq)
                        )
                        seq += 1
                    continue
                if gate.kind == "and":
                    target = int(all(level[s] for s in gate.sources))
                elif gate.kind == "or":
                    target = int(any(level[s] for s in gate.sources))
                elif gate.kind == "not":
                    target = 1 - level[gate.sources[0]]
                else:  # lt latch
                    a, b = gate.sources
                    combinational = level[a] | (1 - level[b])
                    target = combinational & lt_state[gate.id]
                if gate.delay == 0:
                    if target != level[gate.id]:
                        level[gate.id] = target
                        transitions += 1
                        if target == 0 and isinstance(fall_times[gate.id], Infinity):
                            fall_times[gate.id] = t
                    if gate.kind == "lt":
                        lt_state[gate.id] = level[gate.id]
                else:
                    if gate.kind == "lt":
                        # Latch state follows the (delayed) output decision.
                        lt_state[gate.id] = min(lt_state[gate.id], target)
                    if target != eventual[gate.id]:
                        eventual[gate.id] = target
                        heapq.heappush(
                            heap, (t + gate.delay, gate.id, target, seq)
                        )
                        seq += 1

        outputs = {
            name: fall_times[gid] for name, gid in circuit.outputs.items()
        }
        return AsyncResult(
            outputs=outputs,
            fall_times=fall_times,
            transition_count=transitions,
            settle_time=settle_time,
        )


def run_async(circuit: AsyncCircuit, inputs: Mapping[str, Time]) -> AsyncResult:
    """One-shot asynchronous simulation."""
    return AsyncSimulator(circuit).run(inputs)
