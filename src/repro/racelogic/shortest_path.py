"""Race-logic shortest paths (paper §V; Madhavan, Sherwood & Strukov).

The original race logic application: find the shortest path through a
weighted DAG by racing edge-delayed signals — a node's wire falls at the
earliest time any predecessor's fall reaches it, i.e. at its shortest
distance from the source.  In s-t terms each node is a ``min`` over
``inc``-delayed predecessors, so the whole solver is a two-primitive
space-time network, compilable to CMOS via :mod:`repro.racelogic.compile`.

A textbook Dijkstra implementation is included as the baseline the
benchmarks compare against, plus a random-DAG workload generator.
"""

from __future__ import annotations

import heapq
import random
from collections.abc import Hashable
from dataclasses import dataclass, field
from typing import Optional

from ..core.value import INF, Time
from ..network.builder import NetworkBuilder
from ..network.graph import Network
from ..network.simulator import evaluate
from .compile import GRLExecutor

NodeId = Hashable


@dataclass
class WeightedDAG:
    """A directed acyclic graph with non-negative integer edge weights."""

    edges: dict[NodeId, list[tuple[NodeId, int]]] = field(default_factory=dict)

    def add_edge(self, u: NodeId, v: NodeId, weight: int) -> None:
        if weight < 0:
            raise ValueError("edge weights must be non-negative")
        self.edges.setdefault(u, [])
        self.edges.setdefault(v, [])
        self.edges[u].append((v, weight))

    @property
    def nodes(self) -> list[NodeId]:
        return list(self.edges)

    @property
    def edge_count(self) -> int:
        return sum(len(out) for out in self.edges.values())

    @property
    def total_weight(self) -> int:
        """Sum of all edge weights = flip-flop count of the GRL circuit."""
        return sum(w for out in self.edges.values() for _, w in out)

    def topological_order(self) -> list[NodeId]:
        """Kahn's algorithm; raises on cycles (race logic needs a DAG)."""
        indegree: dict[NodeId, int] = {n: 0 for n in self.edges}
        for out in self.edges.values():
            for v, _ in out:
                indegree[v] += 1
        ready = [n for n, d in indegree.items() if d == 0]
        order: list[NodeId] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for v, _ in self.edges[node]:
                indegree[v] -= 1
                if indegree[v] == 0:
                    ready.append(v)
        if len(order) != len(self.edges):
            raise ValueError("graph has a cycle; race logic requires a DAG")
        return order


def dijkstra(graph: WeightedDAG, source: NodeId) -> dict[NodeId, Time]:
    """Baseline: classic Dijkstra distances from *source* (∞ if unreachable)."""
    if source not in graph.edges:
        raise KeyError(f"unknown source {source!r}")
    distance: dict[NodeId, Time] = {n: INF for n in graph.edges}
    distance[source] = 0
    heap: list[tuple[int, int, NodeId]] = [(0, 0, source)]
    counter = 1
    visited: set[NodeId] = set()
    while heap:
        dist, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        for neighbor, weight in graph.edges[node]:
            candidate = dist + weight
            if candidate < distance[neighbor]:
                distance[neighbor] = candidate
                heapq.heappush(heap, (candidate, counter, neighbor))
                counter += 1
    return distance


def build_race_network(graph: WeightedDAG, source: NodeId, *, name: Optional[str] = None) -> Network:
    """The race-logic solver as an s-t network (min + inc only).

    One input, ``start``: inject a spike at time 0 (or any time — the
    solver is invariant, distances ride on top of the injection time).
    One output per node, named ``dist[<node>]``; unreachable nodes never
    fire.
    """
    order = graph.topological_order()
    builder = NetworkBuilder(name or f"race-{len(order)}nodes")
    start = builder.input("start")

    incoming: dict[NodeId, list] = {n: [] for n in graph.edges}
    wires: dict[NodeId, object] = {}
    for node in order:
        if node == source:
            arrivals = [start, *incoming[node]]
        else:
            arrivals = incoming[node]
        if arrivals:
            wires[node] = builder.min(*arrivals) if len(arrivals) > 1 else arrivals[0]
            for neighbor, weight in graph.edges[node]:
                incoming[neighbor].append(builder.inc(wires[node], weight))
        else:
            wires[node] = None  # unreachable: no wire ever fires
    never = None
    for node in order:
        if wires[node] is None:
            if never is None:
                never = builder.lt(start, start)  # identically ∞
            builder.output(f"dist[{node}]", never)
        else:
            builder.output(f"dist[{node}]", wires[node])
    return builder.build()


def race_shortest_paths(graph: WeightedDAG, source: NodeId) -> dict[NodeId, Time]:
    """Distances via the race-logic network (denotational evaluation)."""
    network = build_race_network(graph, source)
    out = evaluate(network, {"start": 0})
    return {node: out[f"dist[{node}]"] for node in graph.edges}


def race_shortest_paths_digital(
    graph: WeightedDAG, source: NodeId
) -> tuple[dict[NodeId, Time], int]:
    """Distances via the compiled CMOS circuit; also returns the toggle count.

    This is the full §V story: DAG → s-t network → GRL netlist →
    cycle-accurate simulation → read distances off the falling edges.
    """
    network = build_race_network(graph, source)
    executor = GRLExecutor(network)
    longest = graph.total_weight + 1
    result = executor.run({"start": 0}, horizon=longest)
    distances = {
        node: result.outputs[f"dist[{node}]"] for node in graph.edges
    }
    return distances, result.transition_count


def random_dag(
    n_nodes: int,
    *,
    edge_probability: float = 0.3,
    max_weight: int = 7,
    rng: Optional[random.Random] = None,
) -> WeightedDAG:
    """A random layered DAG on nodes ``0..n-1`` (edges only go forward)."""
    if n_nodes < 1:
        raise ValueError("need at least one node")
    rng = rng or random.Random(0)
    graph = WeightedDAG()
    for n in range(n_nodes):
        graph.edges.setdefault(n, [])
    for u in range(n_nodes):
        for v in range(u + 1, n_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(u, v, rng.randint(0, max_weight))
    return graph
