"""Compile space-time networks to GRL circuits (paper §V).

The mapping (Fig. 16, with the 1→0 edge encoding):

=============  =================================
s-t primitive  GRL gate
=============  =================================
``min``        AND (any low input forces low)
``max``        OR (stays high until all fall)
``lt``         the latched a-before-b gate
``inc(+c)``    c clocked flip-flops (shift reg.)
``param``      an input wire pinned by the config
=============  =================================

The compiled circuit, run on the cycle-accurate
:class:`~repro.racelogic.digital.DigitalSimulator`, produces output fall
times identical to the network's spike times — the paper's claim that
TNNs can be implemented directly with off-the-shelf CMOS.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Optional

from ..core.value import Time
from ..ir.program import ProgramLike, ensure_program
from ..obs.trace import NULL_SINK, TraceSink, emit_events
from .circuit import Circuit, CircuitBuilder
from .digital import DigitalResult, DigitalSimulator


def compile_network(
    network: ProgramLike,
    *,
    name: Optional[str] = None,
    node_map: Optional[dict[int, int]] = None,
) -> Circuit:
    """Translate an s-t network or IR program into a GRL netlist.

    Parameters become circuit inputs (bind them with the same 0/∞ values
    at simulation time); node-for-gate the structure is otherwise
    preserved, with ``inc`` nodes expanding into DFF chains.

    The IR declares which nodes are the lattice-identity constants
    (:attr:`~repro.ir.program.Program.const_ids`); those have no gate
    realization, so a program still carrying one is rejected here — run
    the canonicalization pass (:mod:`repro.ir.passes`) to fold them away
    where the lattice laws allow.

    *node_map*, if given, is filled with ``node id -> gate id`` — the
    gate whose 1→0 fall time *is* the node's spike time (for an ``inc``
    chain, the final flip-flop).  The spike-trace read-back uses it.
    """
    program = ensure_program(network)
    if program.const_ids:
        node = program.nodes[program.const_ids[0]]
        constant = "∞" if node.kind == "min" else "0"
        raise ValueError(
            f"node {node.id}: a zero-source {node.kind} (the constant "
            f"{constant}) has no GRL realization — a CMOS gate needs "
            "input wires"
        )
    builder = CircuitBuilder(name or f"grl-{program.name}")
    wire: dict[int, int] = node_map if node_map is not None else {}
    for node in program.nodes:
        if node.kind in ("input", "param"):
            wire[node.id] = builder.input(node.name)
        elif node.kind == "inc":
            wire[node.id] = builder.delay(wire[node.sources[0]], node.amount)
        elif node.kind == "min":
            wire[node.id] = builder.and_(*(wire[s] for s in node.sources))
        elif node.kind == "max":
            wire[node.id] = builder.or_(*(wire[s] for s in node.sources))
        else:  # lt
            a, b = node.sources
            wire[node.id] = builder.lt(wire[a], wire[b])
    for out_name, node_id in program.outputs.items():
        builder.output(out_name, wire[node_id])
    return builder.build()


class GRLExecutor:
    """Run an s-t network *as hardware*: compile once, simulate per input."""

    def __init__(self, network: ProgramLike):
        self.network = ensure_program(network)
        self.node_wires: dict[int, int] = {}
        self.circuit = compile_network(self.network, node_map=self.node_wires)
        self._simulator = DigitalSimulator(self.circuit)

    def run(
        self,
        inputs: Mapping[str, Time],
        *,
        params: Optional[Mapping[str, Time]] = None,
        horizon: int | None = None,
        sink: TraceSink = NULL_SINK,
    ) -> DigitalResult:
        """Run one volley.  *sink*, when enabled, receives the canonical
        *node-level* spike trace, read back from gate fall times through
        the node→wire map — directly comparable (byte-identical on
        agreement) to the other three backends' traces."""
        bound = dict(inputs)
        for pname in self.network.param_ids:
            if params is None or pname not in params:
                raise ValueError(f"unbound parameter {pname!r}")
            bound[pname] = params[pname]
        result = self._simulator.run(bound, horizon=horizon)
        if sink.enabled:
            values = [
                result.fall_times[self.node_wires[node.id]]
                for node in self.network.nodes
            ]
            emit_events(sink, self.network, values)
        return result

    def outputs(
        self,
        inputs: Mapping[str, Time],
        *,
        params: Optional[Mapping[str, Time]] = None,
    ) -> dict[str, Time]:
        """Just the output fall times — directly comparable to
        :func:`repro.network.simulator.evaluate`."""
        return self.run(inputs, params=params).outputs
