"""Cycle-accurate digital simulation of GRL circuits.

This simulator is deliberately *not* aware of the s-t algebra: it pushes
boolean levels through gates cycle by cycle, exactly as a synchronous
CMOS testbench would — inputs idle high and fall at their programmed
cycles; DFFs sample on the clock; the LT latch is a level-sensitive
feedback loop with a reset.  The first 1→0 transition of each output wire
is then *read back* as a time value.

Because it shares nothing with the denotational evaluator, agreement
between the two (tested exhaustively, benchmarked at scale) is genuine
evidence for the paper's §V claim: off-the-shelf digital circuits
implement the space-time algebra.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..core.value import INF, Infinity, Time, check_time
from ..obs.metrics import METRICS
from ..obs.trace import NULL_SINK, TraceSink
from .circuit import Circuit, CircuitError


@dataclass
class DigitalResult:
    """Outcome of one GRL run."""

    outputs: dict[str, Time]
    fall_times: list[Time]
    transition_count: int
    cycles_simulated: int

    def transitions_on(self, gate_id: int) -> int:
        return 0 if isinstance(self.fall_times[gate_id], Infinity) else 1


class DigitalSimulator:
    """Reusable cycle simulator for one circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit

    def run(
        self,
        inputs: Mapping[str, Time],
        *,
        horizon: int | None = None,
        sink: TraceSink = NULL_SINK,
    ) -> DigitalResult:
        """Simulate until *horizon* cycles (auto-sized if omitted).

        The automatic horizon covers the latest finite input plus every
        DFF stage plus one settling cycle — enough for any fall to
        propagate through a feedforward netlist.

        *sink*, when enabled, receives raw gate-level events: the first
        1→0 fall of each gate, with cause ``fall:<gate-kind>``.  This is
        the circuit-level view; the canonical node-level trace comes from
        :class:`~repro.racelogic.compile.GRLExecutor` read-back.
        """
        circuit = self.circuit
        missing = set(circuit.input_ids) - set(inputs)
        if missing:
            raise CircuitError(f"unbound inputs: {sorted(missing)}")
        input_falls: dict[int, Time] = {}
        latest = 0
        for name, gid in circuit.input_ids.items():
            fall = check_time(inputs[name], name=name)
            input_falls[gid] = fall
            if not isinstance(fall, Infinity):
                latest = max(latest, fall)
        if horizon is None:
            horizon = latest + circuit.flipflop_count + 1

        n = len(circuit.gates)
        dff_state = {g.id: 1 for g in circuit.gates if g.kind == "dff"}
        lt_state = {g.id: 1 for g in circuit.gates if g.kind == "lt"}  # reset
        fall_times: list[Time] = [INF] * n
        transitions = 0

        # Settle pass (reset state, all inputs idle high): establishes each
        # wire's pre-computation level — NOT outputs idle *low* — so the
        # transition count reflects only computation activity.
        level = [1] * n
        for gate in circuit.gates:
            if gate.kind == "and":
                level[gate.id] = int(all(level[s] for s in gate.sources))
            elif gate.kind == "or":
                level[gate.id] = int(any(level[s] for s in gate.sources))
            elif gate.kind == "not":
                level[gate.id] = 1 - level[gate.sources[0]]
            # inputs, dffs, and reset lt latches all idle high.

        tracing = sink.enabled
        for cycle in range(horizon + 1):
            # DFF outputs present their state sampled at the last edge.
            new_level = list(level)
            for gate in circuit.gates:
                if gate.kind == "input":
                    fall = input_falls[gate.id]
                    new_level[gate.id] = 0 if fall <= cycle else 1
                elif gate.kind == "and":
                    new_level[gate.id] = int(
                        all(new_level[s] for s in gate.sources)
                    )
                elif gate.kind == "or":
                    new_level[gate.id] = int(
                        any(new_level[s] for s in gate.sources)
                    )
                elif gate.kind == "not":
                    new_level[gate.id] = 1 - new_level[gate.sources[0]]
                elif gate.kind == "dff":
                    new_level[gate.id] = dff_state[gate.id]
                else:  # lt latch: (a OR NOT b) AND state, state freezes 0
                    a, b = gate.sources
                    combinational = new_level[a] | (1 - new_level[b])
                    out = combinational & lt_state[gate.id]
                    lt_state[gate.id] = out
                    new_level[gate.id] = out
            # Count toggles and record first falls.
            for gid in range(n):
                if new_level[gid] != level[gid]:
                    transitions += 1
                    if new_level[gid] == 0 and isinstance(fall_times[gid], Infinity):
                        fall_times[gid] = cycle
                        if tracing:
                            sink.emit(
                                cycle, gid, f"fall:{circuit.gates[gid].kind}"
                            )
            level = new_level
            # Clock edge: DFFs capture their inputs for the next cycle.
            for gate in circuit.gates:
                if gate.kind == "dff":
                    dff_state[gate.id] = level[gate.sources[0]]

        outputs = {
            name: fall_times[gid] for name, gid in circuit.outputs.items()
        }
        METRICS.inc("grl.runs")
        METRICS.inc("grl.transitions", transitions)
        return DigitalResult(
            outputs=outputs,
            fall_times=fall_times,
            transition_count=transitions,
            cycles_simulated=horizon + 1,
        )


def run_circuit(
    circuit: Circuit,
    inputs: Mapping[str, Time],
    *,
    horizon: int | None = None,
) -> DigitalResult:
    """One-shot simulation of *circuit*."""
    return DigitalSimulator(circuit).run(inputs, horizon=horizon)
