"""GRL gate semantics (paper Fig. 16).

With the 1→0 edge encoding (wire falls at its value):

* **AND** — output falls at the *first* input fall (any 0 forces 0):
  implements ``min``.
* **OR** — output falls only when *all* inputs have fallen: ``max``.
* **DFF chain** — a shift register of c flip-flops initialized high
  delays the fall by c clock cycles: ``inc(+c)``.
* **LT latch** — combinationally ``a OR NOT b``: the output falls when
  ``a`` falls while ``b`` is still high (``a`` strictly earlier).  A latch
  holds the 0 so the output cannot rise back when ``b`` eventually falls;
  a ``reset`` re-arms it (state 1) before each computation.

These closed-form gate semantics on fall times are the specification the
cycle-accurate simulator (:mod:`repro.racelogic.digital`) is tested
against, and they match the s-t primitives exactly — the content of the
paper's §V claim.
"""

from __future__ import annotations

from ..core.value import INF, Infinity, Time, check_time


def and_gate(*inputs: Time) -> Time:
    """Fall time of an AND of edge signals = min of the fall times."""
    best: Time = INF
    for fall in inputs:
        fall = check_time(fall)
        if fall < best:
            best = fall
    return best


def or_gate(*inputs: Time) -> Time:
    """Fall time of an OR of edge signals = max of the fall times."""
    worst: Time = 0
    for fall in inputs:
        fall = check_time(fall)
        if fall > worst:
            worst = fall
    return worst


def not_gate(fall: Time) -> tuple[int, Time]:
    """A NOT gate breaks the GRL discipline: its output *rises*.

    Returns ``(initial_level, rise_time)`` — the inverse waveform.  Only
    legal buried inside the LT latch, never on a GRL wire; exposed here
    for the gate-level simulator and its tests.
    """
    fall = check_time(fall)
    return 0, fall  # starts low, rises when the input falls


def dff_chain(fall: Time, n_stages: int) -> Time:
    """A shift register of *n_stages* flip-flops, initialized high.

    Each stage samples its input once per clock; the fall propagates one
    stage per cycle, arriving ``n_stages`` cycles late.
    """
    if n_stages < 0:
        raise ValueError("stage count must be non-negative")
    fall = check_time(fall)
    if isinstance(fall, Infinity):
        return INF
    return fall + n_stages


def lt_latch(a: Time, b: Time) -> Time:
    """The latched a-strictly-before-b gate.

    Combinationally ``a OR NOT b`` falls iff ``a`` is low while ``b`` is
    still high, which first happens at cycle ``a`` when ``a < b``.  The
    latch freezes the 0; without it the output would rise again at ``b``
    (see :func:`lt_unlatched_waveform`).  Simultaneous falls produce no
    output transition: by the time the gates settle, ``NOT b`` already
    holds the output high.
    """
    a = check_time(a)
    b = check_time(b)
    return a if a < b else INF


def lt_unlatched_waveform(a: Time, b: Time, horizon: int) -> list[int]:
    """Level trace of ``a OR NOT b`` *without* the latch.

    Demonstrates why Fig. 16 needs the latch: for ``a < b < ∞`` the output
    falls at ``a`` but glitches back to 1 at ``b``.
    """
    a = check_time(a)
    b = check_time(b)
    levels = []
    for cycle in range(horizon + 1):
        a_level = 0 if a <= cycle else 1
        b_level = 0 if b <= cycle else 1
        levels.append(a_level | (1 - b_level))
    return levels
