"""Behavioral SRM0 neuron model (paper Fig. 1, §II.A).

The Spike Response Model 0: each input spike, delayed by its synaptic
delay, produces a weighted response function; responses sum into the body
potential; the neuron fires the first time the potential reaches the
threshold θ.

This is the *numerical* reference model — the way neuroscience simulators
compute it.  The pure s-t primitive construction of the same neuron
(Fig. 12) lives in :mod:`repro.neuron.srm0_network`; the two are proven
equivalent by the test suite and the Fig. 12 benchmark.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

from ..core.value import INF, Infinity, Time, check_vector
from .response import ResponseFunction


class SRM0Neuron:
    """An SRM0 neuron with one response function per input synapse.

    *responses* carries the already-weighted (and already-delayed, if the
    Fig. 1 δ delays are wanted — use ``ResponseFunction.delayed``)
    response of each synapse.  *threshold* is the firing threshold θ in
    the same integer amplitude units.
    """

    def __init__(
        self,
        responses: Sequence[ResponseFunction],
        threshold: int,
        *,
        name: Optional[str] = None,
    ):
        if not responses:
            raise ValueError("a neuron needs at least one synapse")
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.responses = tuple(responses)
        self.threshold = threshold
        self.name = name or "srm0"

    @property
    def arity(self) -> int:
        return len(self.responses)

    def __repr__(self) -> str:
        return (
            f"SRM0Neuron({self.name!r}, arity={self.arity}, "
            f"threshold={self.threshold})"
        )

    # -- dynamics ----------------------------------------------------------
    def potential(self, inputs: Sequence[Time], t: int) -> int:
        """Body potential at time *t*: the sum of all input responses."""
        total = 0
        for x, response in zip(inputs, self.responses):
            if not isinstance(x, Infinity):
                total += response(t - x)
        return total

    def fire_time(self, inputs: Sequence[Time]) -> Time:
        """First time the potential reaches threshold; ``∞`` if never.

        The potential only changes at input-spike offsets where a response
        steps, so only those candidate times need checking.  (This makes
        the neuron a *bounded* s-t function: its history window is the
        longest response's ``t_max``.)
        """
        vec = check_vector(inputs)
        if len(vec) != self.arity:
            raise TypeError(f"expected {self.arity} inputs, got {len(vec)}")
        candidates: set[int] = set()
        for x, response in zip(vec, self.responses):
            if isinstance(x, Infinity):
                continue
            train = response.steps()
            candidates.update(x + t for t in train.ups)
            candidates.update(x + t for t in train.downs)
        for t in sorted(candidates):
            if self.potential(vec, t) >= self.threshold:
                return t
        return INF

    def as_function(self):
        """The neuron as a :class:`~repro.core.function.SpaceTimeFunction`."""
        from ..core.function import SpaceTimeFunction

        return SpaceTimeFunction(
            lambda *xs: self.fire_time(xs), self.arity, name=self.name
        )

    def trace(self, inputs: Sequence[Time], horizon: int) -> list[int]:
        """Potential sampled at ``t = 0 … horizon`` (for plots and tests)."""
        vec = check_vector(inputs)
        return [self.potential(vec, t) for t in range(horizon + 1)]

    # -- convenience constructors -------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        n_inputs: int,
        weights: Sequence[int],
        *,
        base_response: Optional[ResponseFunction] = None,
        threshold: int,
        name: Optional[str] = None,
    ) -> "SRM0Neuron":
        """A neuron whose synapses share one base response, scaled by weight.

        This is the usual TNN setup: a single response *shape* whose
        amplitude encodes the trained synaptic weight (§IV.B).
        """
        if len(weights) != n_inputs:
            raise ValueError("one weight per input required")
        base = base_response or ResponseFunction.biexponential()
        return cls(
            [base.scaled(w) for w in weights], threshold, name=name
        )
