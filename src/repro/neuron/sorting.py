"""Sorting networks from min/max comparators (paper §IV.A.1, Fig. 10).

Sort is causal and invariant, so it is a legal s-t building block; the
paper uses Batcher's bitonic network of two-output comparators — each a
``min`` node plus a ``max`` node — as the core of the SRM0 construction.

Two constructions are provided:

* :func:`bitonic_sort` — the paper's choice.  Defined for power-of-two
  widths; other widths are handled by *virtual padding*: the network is
  laid out for the next power of two with ``∞`` (never-spiking) pad wires,
  and every comparator touching a pad is constant-folded away
  (``min(x, ∞) = x``, ``max(x, ∞) = ∞``), so the emitted network contains
  only real comparators.
* :func:`odd_even_merge_sort` — Batcher's other network, with fewer
  comparators; used as an ablation in the Fig. 10 benchmark.

Both return the sorted output wires ascending; with pads, trailing
positions may be ``None`` meaning "provably ∞" (fewer real spikes than
wires), which consumers treat as absent.
"""

from __future__ import annotations

from typing import Optional

from ..network.builder import NetworkBuilder, Source

#: A wire that provably never spikes (folded ∞ pad).
PadWire = None
Wire = Optional[Source]


def _comparator(builder: NetworkBuilder, a: Wire, b: Wire) -> tuple[Wire, Wire]:
    """Compare-exchange with ∞-pad folding: returns (low, high)."""
    if a is None and b is None:
        return None, None
    if a is None:
        return b, None
    if b is None:
        return a, None
    return builder.min(a, b, tag="sort"), builder.max(a, b, tag="sort")


def _next_power_of_two(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


def bitonic_sort(builder: NetworkBuilder, wires: list[Source]) -> list[Wire]:
    """Emit a bitonic sorting network; returns wires sorted ascending.

    Uses the standard iterative index schedule; pads (``None``) flow
    through comparators by folding, so arbitrary input counts are
    supported while emitting only real ``min``/``max`` nodes.
    """
    n = len(wires)
    if n == 0:
        return []
    if n == 1:
        return list(wires)
    size = _next_power_of_two(n)
    lanes: list[Wire] = list(wires) + [None] * (size - n)

    k = 2
    while k <= size:
        j = k // 2
        while j >= 1:
            for i in range(size):
                partner = i ^ j
                if partner > i:
                    ascending = (i & k) == 0
                    lo, hi = _comparator(builder, lanes[i], lanes[partner])
                    if ascending:
                        lanes[i], lanes[partner] = lo, hi
                    else:
                        lanes[i], lanes[partner] = hi, lo
            j //= 2
        k *= 2
    return lanes[:n] if all(w is None for w in lanes[n:]) else _compact(lanes, n)


def odd_even_merge_sort(builder: NetworkBuilder, wires: list[Source]) -> list[Wire]:
    """Batcher's odd-even merge sort network (ablation alternative)."""
    n = len(wires)
    if n == 0:
        return []
    size = _next_power_of_two(n)
    lanes: list[Wire] = list(wires) + [None] * (size - n)

    def sort_range(lo: int, length: int) -> None:
        if length <= 1:
            return
        half = length // 2
        sort_range(lo, half)
        sort_range(lo + half, half)
        merge(lo, length, 1)

    def merge(lo: int, length: int, stride: int) -> None:
        step = stride * 2
        if step < length:
            merge(lo, length, step)
            merge(lo + stride, length, step)
            for i in range(lo + stride, lo + length - stride, step):
                a, b = _comparator(builder, lanes[i], lanes[i + stride])
                lanes[i], lanes[i + stride] = a, b
        else:
            a, b = _comparator(builder, lanes[lo], lanes[lo + stride])
            lanes[lo], lanes[lo + stride] = a, b

    sort_range(0, size)
    return _compact(lanes, n)


def _compact(lanes: list[Wire], n: int) -> list[Wire]:
    """Keep the first *n* lanes (pads beyond carry no information).

    After a full ascending sort, every pad (∞) lane has sunk below all
    real lanes, so the first *n* lanes hold the sorted real values —
    though some may themselves be pads when folding proved a position is
    always ∞ (never happens for the first n positions of a correct sort,
    kept defensive).
    """
    return lanes[:n]


def sort_network(values_count: int, *, algorithm: str = "bitonic", name: Optional[str] = None):
    """Build a standalone sorting network over *values_count* inputs.

    Returns the built :class:`~repro.network.graph.Network` with inputs
    ``x0..`` and outputs ``s0..`` (ascending).  Mostly used by tests and
    the Fig. 10 benchmark; the SRM0 construction inlines the sorter via
    :func:`bitonic_sort` instead.
    """
    if values_count < 1:
        raise ValueError("need at least one input")
    builder = NetworkBuilder(name or f"{algorithm}-sort{values_count}")
    inputs = [builder.input(f"x{i}") for i in range(values_count)]
    if algorithm == "bitonic":
        outputs = bitonic_sort(builder, inputs)
    elif algorithm == "odd-even":
        outputs = odd_even_merge_sort(builder, inputs)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    for i, wire in enumerate(outputs):
        if wire is None:
            raise AssertionError("pad leaked into a no-pad sort")
        builder.output(f"s{i}", wire)
    return builder.build()


def comparator_count(network) -> int:
    """Number of comparators (min/max pairs) in a sorting network."""
    kinds = network.counts_by_kind()
    return max(kinds.get("min", 0), kinds.get("max", 0))


def theoretical_bitonic_comparators(n: int) -> int:
    """Comparator count of a full bitonic sorter for power-of-two *n*.

    ``(n/4) * log2(n) * (log2(n) + 1)`` — the classic closed form.
    """
    if n & (n - 1):
        raise ValueError("defined for powers of two")
    log = n.bit_length() - 1
    return (n * log * (log + 1)) // 4
