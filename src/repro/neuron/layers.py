"""Multi-layer temporal neural networks.

The networks the paper surveys (§II.C) are layered: neuroscience
architectures stack columns into hierarchies ("neural architectures that
appear superficially similar to hierarchical, layered ANNs" —
Kheradpisheh et al. push toward multiple excitatory layers).  This module
provides the layered composition:

* :class:`LayeredTNN` — a feedforward stack of WTA columns; each layer's
  post-inhibition volley is the next layer's input volley.  By Lemma 1
  the whole stack is one s-t function, and :func:`compile_layered`
  produces it as a single primitive network.
* Greedy layer-wise STDP training (the standard recipe for deep
  STDP-trained TNNs: train layer 1 to convergence, freeze, then train
  layer 2 on its outputs, …).
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Optional

import numpy as np

from ..core.value import Time
from ..network.builder import NetworkBuilder
from ..network.graph import Network
from .column import Column
from .response import ResponseFunction
from .srm0_network import build_srm0_network


class LayeredTNN:
    """A feedforward stack of WTA columns."""

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise ValueError("need at least one layer")
        for upstream, downstream in zip(columns, columns[1:]):
            if downstream.n_inputs != upstream.n_neurons:
                raise ValueError(
                    f"layer width mismatch: {upstream.n_neurons} outputs "
                    f"feed {downstream.n_inputs} inputs"
                )
        self.columns = list(columns)

    @property
    def n_layers(self) -> int:
        return len(self.columns)

    @property
    def n_inputs(self) -> int:
        return self.columns[0].n_inputs

    @property
    def n_outputs(self) -> int:
        return self.columns[-1].n_neurons

    def forward(self, volley: Sequence[Time]) -> tuple[Time, ...]:
        """Output volley of the final layer."""
        current = tuple(volley)
        for column in self.columns:
            current = column.forward(current)
        return current

    def forward_batch(
        self, volleys: Sequence[Sequence[Time]]
    ) -> list[tuple[Time, ...]]:
        """Final-layer volleys for a whole batch of inputs.

        Window-WTA stacks are compiled once (:func:`compile_layered`)
        and every volley is evaluated in a single call into the batched
        engine (:func:`repro.network.compile_plan.evaluate_batch`) —
        identical results to per-volley :meth:`forward`, since the
        Fig. 12 compilation reproduces each neuron's fire time exactly.
        k-WTA stacks are not compilable and fall back to the behavioral
        per-volley path.

        Note: columns are mutable (training updates weights), so the
        stack is recompiled per call; the build cost is amortized over
        the batch.
        """
        if any(column.k is not None for column in self.columns):
            return [self.forward(v) for v in volleys]
        from ..network.compile_plan import decode_matrix, evaluate_batch

        network = compile_layered(self)
        return decode_matrix(evaluate_batch(network, volleys))

    def activations(self, volley: Sequence[Time]) -> list[tuple[Time, ...]]:
        """Per-layer post-inhibition volleys (for inspection/training)."""
        current = tuple(volley)
        trace = []
        for column in self.columns:
            current = column.forward(current)
            trace.append(current)
        return trace

    @classmethod
    def random(
        cls,
        widths: Sequence[int],
        *,
        threshold_fraction: float = 0.3,
        max_weight: int = 7,
        base_response: Optional[ResponseFunction] = None,
        wta_window: int = 1,
        seed: int = 0,
    ) -> "LayeredTNN":
        """A randomly initialized stack; ``widths[0]`` is the input width.

        Per-layer thresholds scale with fan-in so deeper (narrower)
        layers stay excitable.
        """
        if len(widths) < 2:
            raise ValueError("widths must list input plus at least one layer")
        rng = random.Random(seed)
        base = base_response or ResponseFunction.step(amplitude=1, width=8)
        columns = []
        for fan_in, n_neurons in zip(widths, widths[1:]):
            weights = np.array(
                [
                    [rng.randint(1, max(1, max_weight // 2)) for _ in range(fan_in)]
                    for _ in range(n_neurons)
                ],
                dtype=np.int64,
            )
            drive = max_weight * base.r_max * fan_in
            threshold = max(1, round(drive * threshold_fraction * 0.25))
            columns.append(
                Column(
                    weights,
                    threshold=threshold,
                    base_response=base,
                    wta_window=wta_window,
                )
            )
        return cls(columns)


def train_layerwise(
    tnn: LayeredTNN,
    volleys: Sequence[Sequence[Time]],
    *,
    rule=None,
    epochs_per_layer: int = 2,
    seed: int = 0,
    use_homeostasis: bool = True,
) -> None:
    """Greedy layer-wise unsupervised STDP.

    Layer ``k`` trains on the frozen outputs of layers ``< k`` — the
    standard deep-TNN recipe (Kheradpisheh et al.; Masquelier & Thorpe).
    """
    from ..learning.stdp import Homeostasis, STDPRule, STDPTrainer

    rule = rule or STDPRule()
    current: list[tuple[Time, ...]] = [tuple(v) for v in volleys]
    for depth, column in enumerate(tnn.columns):
        homeostasis = Homeostasis(column) if use_homeostasis else None
        trainer = STDPTrainer(
            column,
            rule,
            rng=random.Random(seed + depth),
            homeostasis=homeostasis,
        )
        trainer.train(current, epochs=epochs_per_layer)
        if homeostasis is not None:
            homeostasis.reset(column)
        current = [column.forward(v) for v in current]


def compile_layered(tnn: LayeredTNN, *, name: Optional[str] = None) -> Network:
    """The whole stack as one primitive network (Lemma 1 at depth).

    Only window-WTA layers are compilable (same restriction as
    :func:`repro.neuron.column.compile_column`).
    """
    if any(column.k is not None for column in tnn.columns):
        raise ValueError("compile_layered supports window-WTA layers only")
    builder = NetworkBuilder(name or f"layered-tnn({tnn.n_layers} layers)")
    current = [builder.input(f"x{i + 1}") for i in range(tnn.n_inputs)]

    for depth, column in enumerate(tnn.columns):
        raw = []
        for i in range(column.n_neurons):
            sub = build_srm0_network(column.neurons[i], name=f"l{depth}n{i}")
            refs = builder.merge(
                sub,
                rename={
                    f"x{j + 1}": current[j] for j in range(column.n_inputs)
                },
            )
            raw.append(refs["y"])
        first = builder.min(*raw, tag=f"l{depth}-first") if len(raw) > 1 else raw[0]
        inhibit = builder.inc(first, column.wta_window, tag=f"l{depth}-inhibit")
        current = [
            builder.lt(r, inhibit, tag=f"l{depth}-wta") for r in raw
        ]
    for i, wire in enumerate(current):
        builder.output(f"y{i + 1}", wire)
    return builder.build()
