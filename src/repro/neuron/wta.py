"""Winner-take-all lateral inhibition (paper §IV.C, Fig. 15).

Inhibitory neurons act en masse as a "blanket of inhibition"; in TNNs the
effect is winner-take-all: the earliest spike(s) of a volley pass, the
rest are inhibited.  "First" is parameterizable (the paper): exactly the
spikes at relative time 0 (1-WTA), all spikes within a window τ of the
first (τ-WTA), or the k earliest spikes (k-WTA).

Fig. 15's construction: a ``min`` finds the first spike time; delayed by
τ it inhibits every line via ``lt``.  k-WTA uses a sorting network: the
``(k+1)``-th earliest spike time is the inhibition signal.

Both network builders and fast behavioral (volley-level) versions are
provided; they are checked equivalent in the tests.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np

from ..core.value import INF, Infinity, Time, check_vector, t_min
from ..network.builder import NetworkBuilder
from ..network.compile_plan import INF_I64, decode_matrix, encode_volleys, evaluate_batch
from ..network.graph import Network
from .sorting import bitonic_sort


def build_wta_network(n_lines: int, *, window: int = 1, name: Optional[str] = None) -> Network:
    """Fig. 15: τ-WTA over *n_lines* (window=1 is the paper's 1-WTA).

    Output ``y_i`` re-emits ``x_i`` iff it spikes strictly within *window*
    of the volley's first spike.
    """
    if n_lines < 1:
        raise ValueError("need at least one line")
    if window < 1:
        raise ValueError("window must be at least 1")
    builder = NetworkBuilder(name or f"wta{n_lines}(tau={window})")
    inputs = [builder.input(f"x{i + 1}") for i in range(n_lines)]
    first = builder.min(*inputs, tag="first") if n_lines > 1 else inputs[0]
    inhibit = builder.inc(first, window, tag="inhibit")
    for i, x in enumerate(inputs):
        builder.output(f"y{i + 1}", builder.lt(x, inhibit, tag="pass"))
    return builder.build()


def build_k_wta_network(n_lines: int, k: int, *, name: Optional[str] = None) -> Network:
    """k-WTA: pass spikes strictly earlier than the (k+1)-th earliest.

    Ties at the (k+1)-th time are all inhibited (the network cannot break
    a simultaneity — there is no spatial tie-breaker in the s-t model), so
    fewer than k winners may pass when spikes coincide.
    """
    if not 1 <= k:
        raise ValueError("k must be at least 1")
    builder = NetworkBuilder(name or f"kwta{n_lines}(k={k})")
    inputs = [builder.input(f"x{i + 1}") for i in range(n_lines)]
    if k >= n_lines:
        # Everybody wins; outputs are the inputs.
        for i, x in enumerate(inputs):
            builder.output(f"y{i + 1}", builder.min(x, x))
        return builder.build()
    ordered = bitonic_sort(builder, list(inputs))
    inhibit = ordered[k]
    for i, x in enumerate(inputs):
        if inhibit is None:
            builder.output(f"y{i + 1}", builder.min(x, x))
        else:
            builder.output(f"y{i + 1}", builder.lt(x, inhibit, tag="pass"))
    return builder.build()


# ---------------------------------------------------------------------------
# Behavioral (volley-level) versions — used by the learning/apps layers,
# where building a network per evaluation would be wasteful.
# ---------------------------------------------------------------------------

def wta(times: Sequence[Time], *, window: int = 1) -> tuple[Time, ...]:
    """τ-WTA on a volley: keep spikes with ``t < t_min + window``."""
    if window < 1:
        raise ValueError("window must be at least 1")
    vec = check_vector(times)
    first = t_min(vec)
    if isinstance(first, Infinity):
        return tuple(vec)
    cutoff = first + window
    return tuple(x if x < cutoff else INF for x in vec)


def k_wta(times: Sequence[Time], k: int) -> tuple[Time, ...]:
    """k-WTA on a volley: keep spikes strictly before the (k+1)-th earliest."""
    if k < 1:
        raise ValueError("k must be at least 1")
    vec = check_vector(times)
    finite = sorted(x for x in vec if not isinstance(x, Infinity))
    if len(finite) <= k:
        return tuple(vec)
    cutoff = finite[k]
    return tuple(x if x < cutoff else INF for x in vec)


def wta_batch(
    volleys: Sequence[Sequence[Time]], *, window: int = 1
) -> list[tuple[Time, ...]]:
    """Vectorized :func:`wta` over a batch of volleys.

    One NumPy reduction for the whole batch; agrees elementwise with the
    scalar :func:`wta` (checked in the tests).
    """
    if window < 1:
        raise ValueError("window must be at least 1")
    matrix = encode_volleys(volleys)
    if matrix.size == 0:
        return decode_matrix(matrix)
    first = matrix.min(axis=1)
    # Saturating add, exactly like the engine's inc: an all-silent volley
    # has cutoff ∞ (and passes through), and near-sentinel times cannot
    # overflow.
    cutoff = np.minimum(first, INF_I64 - window) + window
    return decode_matrix(np.where(matrix < cutoff[:, None], matrix, INF_I64))


def k_wta_batch(volleys: Sequence[Sequence[Time]], k: int) -> list[tuple[Time, ...]]:
    """Vectorized :func:`k_wta` over a batch of volleys.

    The (k+1)-th earliest spike per row is one partition; rows with at
    most *k* finite spikes get an ∞ cutoff, i.e. pass unchanged —
    exactly the scalar semantics.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    matrix = encode_volleys(volleys)
    if matrix.size == 0:
        return decode_matrix(matrix)
    if k >= matrix.shape[1]:
        return decode_matrix(matrix)
    # With ∞ encoded as the largest int64, a plain partition puts the
    # (k+1)-th earliest *finite* spike at index k, or ∞ when fewer than
    # k+1 lines spike — both are exactly the cutoff k_wta uses.
    cutoff = np.partition(matrix, k, axis=1)[:, k]
    return decode_matrix(np.where(matrix < cutoff[:, None], matrix, INF_I64))


def network_wta_batch(
    network: Network, volleys: Sequence[Sequence[Time]]
) -> list[tuple[Time, ...]]:
    """Evaluate a WTA *network* (Fig. 15) on a whole batch of volleys.

    One call into the compiled batched engine; output columns follow the
    network's ``y1..yn`` declaration order.
    """
    return decode_matrix(evaluate_batch(network, volleys))


def first_winner(times: Sequence[Time]) -> Optional[int]:
    """Index of the unique earliest spike, or None on silence/tie.

    The decision rule used by WTA-based classifiers: a tie means the
    volley did not discriminate.
    """
    vec = check_vector(times)
    first = t_min(vec)
    if isinstance(first, Infinity):
        return None
    winners = [i for i, x in enumerate(vec) if x == first]
    return winners[0] if len(winners) == 1 else None


def winners(times: Sequence[Time]) -> list[int]:
    """Indices of all earliest spikes (possibly several on a tie)."""
    vec = check_vector(times)
    first = t_min(vec)
    if isinstance(first, Infinity):
        return []
    return [i for i, x in enumerate(vec) if x == first]
