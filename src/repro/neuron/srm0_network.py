"""SRM0 neurons from pure s-t primitives (paper Fig. 12).

The construction: fan each input out into its response function's up/down
step wires (Fig. 11), sort all up wires and all down wires with bitonic
networks (Fig. 10), then race the sorted streams with ``lt`` blocks — the
``i``-th race asks whether the ``(θ+i)``-th up step arrives strictly
before the ``(i+1)``-th down step, i.e. whether the potential reaches θ at
that up step.  A final ``min`` picks the earliest such crossing: exactly
the SRM0 threshold time.

Correctness argument (checked exhaustively in tests): the potential at
time t equals ``#up-steps(<=t) - #down-steps(<=t)``.  The term
``lt(U[θ+i], D[i+1])`` is finite iff at time ``U[θ+i]`` at least ``θ+i``
up steps and at most ``i`` down steps have arrived — a crossing; and the
first crossing is always of this form with ``i`` = the number of down
steps seen so far.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

from ..core.value import Time
from ..network.builder import NetworkBuilder, Ref
from ..network.compile_plan import decode_time, evaluate_batch
from ..network.graph import Network
from .response import ResponseFunction, fanout_network
from .sorting import bitonic_sort, odd_even_merge_sort
from .srm0 import SRM0Neuron


def build_srm0_network(
    neuron: SRM0Neuron,
    *,
    name: Optional[str] = None,
    algorithm: str = "bitonic",
) -> Network:
    """Compile a behavioral :class:`SRM0Neuron` to s-t primitives (Fig. 12).

    The returned network has inputs ``x1..xn`` and one output ``y`` whose
    spike time equals ``neuron.fire_time`` on every input vector.
    """
    builder = NetworkBuilder(name or f"srm0-net({neuron.name})")
    inputs = [builder.input(f"x{i + 1}") for i in range(neuron.arity)]

    up_wires: list[Ref] = []
    down_wires: list[Ref] = []
    for x, response in zip(inputs, neuron.responses):
        ups, downs = fanout_network(builder, x, response)
        up_wires.extend(ups)
        down_wires.extend(downs)

    sorter = bitonic_sort if algorithm == "bitonic" else odd_even_merge_sort
    sorted_ups = sorter(builder, up_wires)
    sorted_downs = sorter(builder, down_wires)

    theta = neuron.threshold
    crossings: list[Ref] = []
    for i in range(len(sorted_ups) - theta + 1):
        up = sorted_ups[theta - 1 + i]  # the (θ+i)-th up step, 1-indexed
        if up is None:
            continue
        down = sorted_downs[i] if i < len(sorted_downs) else None
        if down is None:
            # No (i+1)-th down step can ever arrive: the up step is a
            # crossing unconditionally; lt against ∞ folds to a wire.
            crossings.append(up)
        else:
            crossings.append(builder.lt(up, down, tag="threshold"))

    if crossings:
        builder.output("y", builder.min(*crossings, tag="fire"))
    else:
        # Threshold exceeds the total possible up steps: the neuron can
        # never fire.  lt(x, x) is identically ∞.
        builder.output("y", builder.lt(inputs[0], inputs[0], tag="never"))
    return builder.build()


def batched_fire_times(
    network: Network,
    volleys: Sequence[Sequence[Time]],
    *,
    output: str = "y",
) -> list[Time]:
    """Fire times of a compiled SRM0 network over a whole volley batch.

    One call into the compiled batched engine
    (:func:`repro.network.compile_plan.evaluate_batch`) instead of one
    Python network walk per volley — the fast path for the Fig. 12
    equivalence sweeps and any workload that probes a fixed neuron on
    many volleys.
    """
    column = list(network.outputs).index(output)
    matrix = evaluate_batch(network, volleys)
    return [decode_time(v) for v in matrix[:, column].tolist()]


def build_srm0_from_weights(
    weights: Sequence[int],
    *,
    threshold: int,
    base_response: Optional[ResponseFunction] = None,
    name: Optional[str] = None,
) -> Network:
    """Convenience: weights + shared base response -> compiled network."""
    neuron = SRM0Neuron.homogeneous(
        len(weights),
        weights,
        base_response=base_response,
        threshold=threshold,
        name=name,
    )
    return build_srm0_network(neuron, name=name)
