"""Programmable synaptic weights via micro-weights (paper §IV.B, Figs. 13–14).

The paper's configurability primitive is the *micro-weight*: an ``lt``
whose second input μ is pinned to ``0`` (disable — the lt can never pass)
or ``∞`` (enable — the data spike always passes) before a computation.

Fig. 14 composes micro-weights into a *weight-selectable response*: the
input fans out into per-amplitude-level branches, each gated by one μ;
enabling the first ``w`` branches yields the response of synaptic weight
``w``.  Here each level's branch contributes the *difference* between the
response at weight ``w`` and at ``w - 1``, so any monotone (or even
non-monotone) family of response functions can be selected.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

from ..core.value import INF, Time
from ..network.builder import NetworkBuilder, Ref, Source
from ..network.graph import Network
from .response import ResponseFunction


@dataclass(frozen=True)
class SynapseWires:
    """The gated step wires of one programmable synapse.

    ``ups``/``downs`` feed the SRM0 sort networks; ``param_names`` are the
    micro-weight lines, ordered by level (level 1 first).
    """

    ups: tuple[Ref, ...]
    downs: tuple[Ref, ...]
    param_names: tuple[str, ...]

    def settings_for_weight(self, weight: int) -> dict[str, Time]:
        """Micro-weight values selecting *weight* (Fig. 14's recipe).

        Weight ``w`` enables levels ``1..w``: their μ is ``∞``; the rest
        are ``0``.
        """
        if not 0 <= weight <= len(self.param_names):
            raise ValueError(
                f"weight must be in 0..{len(self.param_names)}, got {weight}"
            )
        return {
            name: (INF if level < weight else 0)
            for level, name in enumerate(self.param_names)
        }


def response_family(
    base: ResponseFunction, max_weight: int
) -> list[ResponseFunction]:
    """The default family: ``base`` scaled by each weight 0..max_weight."""
    return [base.scaled(w) for w in range(max_weight + 1)]


def microweight_synapse(
    builder: NetworkBuilder,
    x: Source,
    responses: Sequence[ResponseFunction],
    *,
    prefix: str = "mu",
) -> SynapseWires:
    """Emit a Fig. 14 weight-selectable synapse for input *x*.

    *responses* lists the response function for each weight value
    ``0..n``; ``responses[0]`` must be the all-zero response (weight 0
    contributes nothing — it is the state with every branch disabled).
    Level ``w`` gates the step train of ``responses[w] - responses[w-1]``.
    """
    if not responses:
        raise ValueError("need at least the weight-0 response")
    if any(responses[0].values):
        raise ValueError("responses[0] (weight 0) must be identically zero")

    ups: list[Ref] = []
    downs: list[Ref] = []
    params: list[str] = []
    for level in range(1, len(responses)):
        delta_values = [
            responses[level](t) - responses[level - 1](t)
            for t in range(max(responses[level].t_max, responses[level - 1].t_max) + 1)
        ]
        train = ResponseFunction(delta_values, name=f"level{level}").steps()
        mu = builder.param(f"{prefix}{level}")
        params.append(f"{prefix}{level}")
        for t in train.ups:
            ups.append(builder.gate(builder.inc(x, t, tag="up"), mu))
        for t in train.downs:
            downs.append(builder.gate(builder.inc(x, t, tag="down"), mu))
    return SynapseWires(tuple(ups), tuple(downs), tuple(params))


def build_programmable_neuron(
    n_inputs: int,
    *,
    base_response: Optional[ResponseFunction] = None,
    max_weight: int = 4,
    threshold: int,
    name: Optional[str] = None,
) -> tuple[Network, list[SynapseWires]]:
    """A full SRM0 neuron with per-input micro-weight-selectable weights.

    Returns the network and one :class:`SynapseWires` per input; bind the
    union of their ``settings_for_weight`` dicts as params to configure.
    The network computes, for the selected weight vector ``w``, exactly
    the fire time of ``SRM0Neuron.homogeneous(n, w, threshold=θ)``.
    """
    from .sorting import bitonic_sort

    base = base_response or ResponseFunction.biexponential()
    responses = response_family(base, max_weight)
    builder = NetworkBuilder(name or f"programmable-srm0({n_inputs}x{max_weight})")
    inputs = [builder.input(f"x{i + 1}") for i in range(n_inputs)]

    synapses: list[SynapseWires] = []
    all_ups: list[Ref] = []
    all_downs: list[Ref] = []
    for i, x in enumerate(inputs):
        wires = microweight_synapse(builder, x, responses, prefix=f"mu{i + 1}_")
        synapses.append(wires)
        all_ups.extend(wires.ups)
        all_downs.extend(wires.downs)

    sorted_ups = bitonic_sort(builder, all_ups)
    sorted_downs = bitonic_sort(builder, all_downs)

    crossings: list[Ref] = []
    for i in range(len(sorted_ups) - threshold + 1):
        up = sorted_ups[threshold - 1 + i]
        if up is None:
            continue
        down = sorted_downs[i] if i < len(sorted_downs) else None
        if down is None:
            crossings.append(up)
        else:
            crossings.append(builder.lt(up, down, tag="threshold"))
    if crossings:
        builder.output("y", builder.min(*crossings, tag="fire"))
    else:
        builder.output("y", builder.lt(inputs[0], inputs[0], tag="never"))
    return builder.build(), synapses


def weight_settings(
    synapses: Sequence[SynapseWires], weights: Sequence[int]
) -> dict[str, Time]:
    """Merge per-synapse micro-weight settings for a weight vector."""
    if len(synapses) != len(weights):
        raise ValueError("one weight per synapse required")
    merged: dict[str, Time] = {}
    for synapse, weight in zip(synapses, weights):
        merged.update(synapse.settings_for_weight(weight))
    return merged


def batched_weighted_fire_times(
    network: Network,
    synapses: Sequence[SynapseWires],
    weights: Sequence[int],
    volleys: Sequence[Sequence[Time]],
    *,
    output: str = "y",
) -> list[Time]:
    """Fire times of a programmable neuron over a volley batch.

    Pins the micro-weights for *weights* once and evaluates every volley
    in a single compiled call
    (:func:`repro.network.compile_plan.evaluate_batch`) — the fast path
    for the Figs. 13–14 weight-sweep experiments, which probe each
    weight setting on many volleys.
    """
    from ..network.compile_plan import decode_time, evaluate_batch

    column = list(network.outputs).index(output)
    matrix = evaluate_batch(
        network, volleys, params=weight_settings(synapses, weights)
    )
    return [decode_time(v) for v in matrix[:, column].tolist()]
