"""Temporal neural network components built on the s-t substrate (§IV).

Response functions and their step decomposition (Fig. 11), bitonic
sorting networks (Fig. 10), the behavioral SRM0 neuron (Fig. 1) and its
pure-primitive compilation (Fig. 12), micro-weight programmable synapses
(Figs. 13–14), winner-take-all inhibition (Fig. 15), and WTA-inhibited
columns of neurons (the Fig. 4 building block).
"""

from .column import Column, compile_column
from .layers import LayeredTNN, compile_layered, train_layerwise
from .response import FIG11_RESPONSE, ResponseFunction, StepTrain, fanout_network
from .sorting import (
    bitonic_sort,
    comparator_count,
    odd_even_merge_sort,
    sort_network,
    theoretical_bitonic_comparators,
)
from .srm0 import SRM0Neuron
from .srm0_network import build_srm0_from_weights, build_srm0_network
from .weights import (
    SynapseWires,
    build_programmable_neuron,
    microweight_synapse,
    response_family,
    weight_settings,
)
from .wta import (
    build_k_wta_network,
    build_wta_network,
    first_winner,
    k_wta,
    winners,
    wta,
)

__all__ = [
    "FIG11_RESPONSE",
    "Column",
    "LayeredTNN",
    "ResponseFunction",
    "SRM0Neuron",
    "StepTrain",
    "SynapseWires",
    "bitonic_sort",
    "build_k_wta_network",
    "build_programmable_neuron",
    "build_srm0_from_weights",
    "build_srm0_network",
    "build_wta_network",
    "comparator_count",
    "compile_column",
    "compile_layered",
    "fanout_network",
    "first_winner",
    "k_wta",
    "microweight_synapse",
    "odd_even_merge_sort",
    "response_family",
    "sort_network",
    "theoretical_bitonic_comparators",
    "weight_settings",
    "train_layerwise",
    "winners",
    "wta",
]
