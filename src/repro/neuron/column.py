"""Excitatory columns: layers of SRM0 neurons with lateral inhibition.

The paper's Fig. 4 architecture (after Bichler et al.) and essentially all
surveyed TNNs share this shape: a group ("column") of excitatory neurons
receives the same input volley, each neuron computes its fire time from
its own weight vector, and WTA inhibition keeps only the earliest
output(s).  Columns stack into layers (§II.C).

This module is the *behavioral* workhorse used by the learning rules and
applications; any column can also be compiled to pure s-t primitives via
:func:`compile_column` for cross-checking — the compiled network computes
identical fire times.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np

from ..core.value import Time, check_vector
from ..network.builder import NetworkBuilder
from ..network.graph import Network
from .response import ResponseFunction
from .srm0 import SRM0Neuron
from .srm0_network import build_srm0_network
from .wta import k_wta, wta


class Column:
    """A WTA-inhibited group of SRM0 neurons sharing an input volley.

    *weights* is an ``(n_neurons, n_inputs)`` integer matrix; synapse
    responses are *base_response* scaled by the weight.  Inhibition is
    τ-WTA with the given window, or k-WTA when *k* is set (k takes
    precedence, matching the paper's "may be the first k spikes" variant).
    """

    def __init__(
        self,
        weights: np.ndarray | Sequence[Sequence[int]],
        *,
        threshold: int | Sequence[int],
        base_response: Optional[ResponseFunction] = None,
        wta_window: int = 1,
        k: Optional[int] = None,
        name: Optional[str] = None,
    ):
        matrix = np.asarray(weights, dtype=np.int64)
        if matrix.ndim != 2:
            raise ValueError("weights must be a 2-D matrix")
        if matrix.shape[0] < 1 or matrix.shape[1] < 1:
            raise ValueError("weights must be non-empty")
        self.weights = matrix
        if isinstance(threshold, int):
            self.thresholds = [threshold] * matrix.shape[0]
        else:
            self.thresholds = [int(t) for t in threshold]
            if len(self.thresholds) != matrix.shape[0]:
                raise ValueError("one threshold per neuron required")
        self.base_response = base_response or ResponseFunction.biexponential()
        self.wta_window = wta_window
        self.k = k
        self.name = name or "column"
        self._rebuild_neurons()

    @property
    def threshold(self) -> int:
        """The shared threshold (first neuron's, for homogeneous columns)."""
        return self.thresholds[0]

    def _rebuild_neurons(self) -> None:
        self.neurons = [
            SRM0Neuron.homogeneous(
                self.n_inputs,
                row.tolist(),
                base_response=self.base_response,
                threshold=self.thresholds[i],
                name=f"{self.name}[{i}]",
            )
            for i, row in enumerate(self.weights)
        ]

    def set_threshold(self, index: int, threshold: int) -> None:
        """Adjust one neuron's threshold (used by homeostasis)."""
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.thresholds[index] = threshold
        self.neurons[index] = SRM0Neuron.homogeneous(
            self.n_inputs,
            self.weights[index].tolist(),
            base_response=self.base_response,
            threshold=threshold,
            name=f"{self.name}[{index}]",
        )

    @property
    def n_neurons(self) -> int:
        return self.weights.shape[0]

    @property
    def n_inputs(self) -> int:
        return self.weights.shape[1]

    def __repr__(self) -> str:
        return (
            f"Column({self.name!r}, {self.n_neurons} neurons × "
            f"{self.n_inputs} inputs, θ={self.threshold})"
        )

    # -- dynamics ----------------------------------------------------------
    def excitation(self, volley: Sequence[Time]) -> tuple[Time, ...]:
        """Per-neuron fire times before inhibition."""
        vec = check_vector(volley)
        if len(vec) != self.n_inputs:
            raise ValueError(
                f"expected a volley of {self.n_inputs} lines, got {len(vec)}"
            )
        return tuple(neuron.fire_time(vec) for neuron in self.neurons)

    def forward(self, volley: Sequence[Time]) -> tuple[Time, ...]:
        """Fire times after WTA inhibition — the column's output volley."""
        raw = self.excitation(volley)
        if self.k is not None:
            return k_wta(raw, self.k)
        return wta(raw, window=self.wta_window)

    def set_weights(self, weights: np.ndarray) -> None:
        """Replace the weight matrix (used by the training rules)."""
        matrix = np.asarray(weights, dtype=np.int64)
        if matrix.shape != self.weights.shape:
            raise ValueError(
                f"shape mismatch: {matrix.shape} vs {self.weights.shape}"
            )
        self.weights = matrix
        self._rebuild_neurons()

    # -- compilation ---------------------------------------------------------
    def compile_neuron(self, index: int) -> Network:
        """Compile one neuron to pure s-t primitives (Fig. 12)."""
        return build_srm0_network(self.neurons[index])


def compile_column(column: Column, *, name: Optional[str] = None) -> Network:
    """Compile a whole column (neurons + WTA) into one s-t network.

    Demonstrates Lemma 1 at system scale: the entire column is a single
    feedforward composition of primitives, with outputs ``y1..yn`` (the
    post-inhibition volley).  Only τ-WTA columns are compilable here;
    k-WTA would inline a sorting stage (see
    :func:`repro.neuron.wta.build_k_wta_network`).
    """
    if column.k is not None:
        raise ValueError("compile_column supports window-WTA columns only")
    builder = NetworkBuilder(name or f"compiled-{column.name}")
    inputs = [builder.input(f"x{i + 1}") for i in range(column.n_inputs)]

    raw_outputs = []
    for i in range(column.n_neurons):
        sub = build_srm0_network(column.neurons[i], name=f"n{i}")
        refs = builder.merge(
            sub,
            rename={f"x{j + 1}": inputs[j] for j in range(column.n_inputs)},
        )
        raw_outputs.append(refs["y"])

    first = builder.min(*raw_outputs, tag="first") if len(raw_outputs) > 1 else raw_outputs[0]
    inhibit = builder.inc(first, column.wta_window, tag="inhibit")
    for i, raw in enumerate(raw_outputs):
        builder.output(f"y{i + 1}", builder.lt(raw, inhibit, tag="wta"))
    return builder.build()
