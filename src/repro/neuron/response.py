"""Synaptic response functions and their space-time step decomposition.

§IV.A.2 of the paper: a response function ``R(t)`` maps non-negative
integers to integers, reaches a fixed final value ``c`` after finite time
``t_max``, and stays within finite bounds.  Discretized versions of every
proposed response function (Fig. 2) fit this definition:

* the biologically-based **biexponential** — difference of two exponential
  decays (fast synaptic-conductance decay minus slow membrane leak),
* **piecewise-linear** approximations (Maass),
* arbitrary user-supplied shapes, positive (excitatory) or negative
  (inhibitory).

The key construction (Fig. 11): a response function is equivalent to a
sequence of unit *up steps* and *down steps*; fanning an input spike out
through increment blocks — one per step — realizes the response in pure
s-t form.  :meth:`ResponseFunction.steps` computes the decomposition and
:func:`fanout_network` builds the Fig. 11 network.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

from ..network.builder import NetworkBuilder, Ref, Source


@dataclass(frozen=True)
class StepTrain:
    """The up/down step decomposition of a response function.

    ``ups``/``downs`` are time offsets (relative to the input spike), one
    entry per unit amplitude step — a step of height 2 contributes two
    entries at the same offset.
    """

    ups: tuple[int, ...]
    downs: tuple[int, ...]

    @property
    def total_steps(self) -> int:
        return len(self.ups) + len(self.downs)

    def net_amplitude_at(self, t: int) -> int:
        """Reconstruct the response value at offset *t* from the steps."""
        return sum(1 for u in self.ups if u <= t) - sum(
            1 for d in self.downs if d <= t
        )


class ResponseFunction:
    """A discretized synaptic response ``R(0..t_max)``.

    *values* gives ``R(t)`` for ``t = 0 … t_max``; beyond ``t_max`` the
    response holds its final value.  The paper's neuron constructions
    require the final value to be reached within the window, and most
    responses return to 0 (the construction works either way).
    """

    def __init__(self, values: Sequence[int], *, name: Optional[str] = None):
        vals = tuple(int(v) for v in values)
        if not vals:
            raise ValueError("a response function needs at least one value")
        self.values = vals
        self.name = name or "response"

    # -- basic accessors ---------------------------------------------------------
    @property
    def t_max(self) -> int:
        return len(self.values) - 1

    @property
    def final_value(self) -> int:
        return self.values[-1]

    @property
    def r_max(self) -> int:
        return max(self.values)

    @property
    def r_min(self) -> int:
        return min(self.values)

    def __call__(self, t: int) -> int:
        """``R(t)`` with the constant extension beyond ``t_max``.

        Negative offsets (before the input spike) are 0: a synapse
        contributes nothing before its input arrives.
        """
        if t < 0:
            return 0
        if t > self.t_max:
            return self.final_value
        return self.values[t]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResponseFunction):
            return NotImplemented
        return self.values == other.values

    def __hash__(self) -> int:
        return hash(self.values)

    def __repr__(self) -> str:
        return f"ResponseFunction({self.name!r}, t_max={self.t_max}, peak={self.r_max})"

    # -- transforms ---------------------------------------------------------
    def scaled(self, factor: int) -> "ResponseFunction":
        """Amplitude-scaled copy (integer factor, may be negative)."""
        return ResponseFunction(
            [v * factor for v in self.values], name=f"{self.name}×{factor}"
        )

    def negated(self) -> "ResponseFunction":
        """Inhibitory (sign-flipped) copy."""
        return ResponseFunction([-v for v in self.values], name=f"-{self.name}")

    def delayed(self, delta: int) -> "ResponseFunction":
        """Copy shifted *delta* time units later (the δ of Fig. 1)."""
        if delta < 0:
            raise ValueError("delay must be non-negative")
        return ResponseFunction(
            [0] * delta + list(self.values), name=f"{self.name}+{delta}"
        )

    # -- the Fig. 11 decomposition ---------------------------------------------
    def steps(self) -> StepTrain:
        """Decompose into unit up/down steps.

        ``R(t) - R(t-1)`` (with ``R(-1) = 0``) gives the step count at each
        offset; positive differences are up steps, negative are down steps.
        """
        ups: list[int] = []
        downs: list[int] = []
        previous = 0
        for t, value in enumerate(self.values):
            diff = value - previous
            if diff > 0:
                ups.extend([t] * diff)
            elif diff < 0:
                downs.extend([t] * (-diff))
            previous = value
        return StepTrain(tuple(ups), tuple(downs))

    @classmethod
    def from_steps(cls, train: StepTrain, *, name: Optional[str] = None) -> "ResponseFunction":
        """Rebuild a response function from a step train (inverse of steps)."""
        horizon = max([*train.ups, *train.downs, 0])
        values = [train.net_amplitude_at(t) for t in range(horizon + 1)]
        return cls(values, name=name or "from_steps")

    # -- standard shapes ---------------------------------------------------------
    @classmethod
    def biexponential(
        cls,
        *,
        amplitude: int = 5,
        tau_slow: float = 6.0,
        tau_fast: float = 2.0,
        t_max: int = 12,
        name: Optional[str] = None,
    ) -> "ResponseFunction":
        """Discretized biexponential response (Fig. 2a / Fig. 11).

        ``R(t) ∝ exp(-t/tau_slow) - exp(-t/tau_fast)``, scaled so the peak
        equals *amplitude* and rounded to integer amplitude units.  The
        slow decay models membrane leakage, the fast one the collapse of
        synaptic conductance.
        """
        if tau_slow <= tau_fast:
            raise ValueError("tau_slow must exceed tau_fast")
        if amplitude < 0:
            raise ValueError("amplitude must be non-negative (use negated())")
        shape = [
            math.exp(-t / tau_slow) - math.exp(-t / tau_fast)
            for t in range(t_max + 1)
        ]
        peak = max(shape)
        if peak <= 0:
            values = [0] * (t_max + 1)
        else:
            values = [round(amplitude * s / peak) for s in shape]
        values[-1] = 0 if amplitude else 0  # biexponential decays to zero
        return cls(values, name=name or f"biexp(A={amplitude})")

    @classmethod
    def piecewise_linear(
        cls,
        *,
        amplitude: int = 4,
        rise: int = 2,
        fall: int = 6,
        name: Optional[str] = None,
    ) -> "ResponseFunction":
        """Maass's piecewise-linear approximation (Fig. 2b).

        Rises linearly to *amplitude* over *rise* steps, then falls
        linearly back to 0 over *fall* steps.
        """
        if rise < 1 or fall < 1:
            raise ValueError("rise and fall must be at least 1")
        values = [round(amplitude * t / rise) for t in range(rise + 1)]
        values += [
            round(amplitude * (1 - t / fall)) for t in range(1, fall + 1)
        ]
        return cls(values, name=name or f"pwl(A={amplitude})")

    @classmethod
    def step(cls, *, amplitude: int = 1, width: int = 8, name: Optional[str] = None) -> "ResponseFunction":
        """Non-leaky rectangular response: jump to *amplitude*, hold for
        *width* steps, drop back to 0 (the simple non-leaky models used by
        Masquelier/Thorpe-style TNNs, with a finite memory window)."""
        if width < 1:
            raise ValueError("width must be at least 1")
        values = [amplitude] * width + [0]
        return cls(values, name=name or f"step(A={amplitude},w={width})")


def fanout_network(
    builder: NetworkBuilder,
    x: Source,
    response: ResponseFunction,
    *,
    tag: str = "",
) -> tuple[list[Ref], list[Ref]]:
    """Fig. 11: realize *response* for input *x* as increment fanout.

    Returns ``(up_wires, down_wires)`` — one wire per unit step, each an
    ``inc`` of the input by the step's offset.  These feed the sort
    networks of the SRM0 construction (Fig. 12).
    """
    train = response.steps()
    ups = [builder.inc(x, t, tag=tag or "up") for t in train.ups]
    downs = [builder.inc(x, t, tag=tag or "down") for t in train.downs]
    return ups, downs


#: The paper's running example response (Fig. 11): biexponential with
#: r_max = 5 and t_max = 12.
FIG11_RESPONSE = ResponseFunction.biexponential(amplitude=5, t_max=12)
