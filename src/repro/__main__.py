"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``selfcheck`` — run the library's core equivalence and property checks
  (the paper's headline claims) and print a pass/fail summary.  Useful
  after installation or porting to a new Python.
* ``conformance`` — the differential conformance sweep: seeded random
  networks through every evaluation backend, plus the fault-injection
  self-check (injected mutants must be caught).  See
  ``python -m repro conformance --help``.
* ``info`` — version and package inventory.

Exit status is non-zero when a selfcheck or conformance run fails.
"""

from __future__ import annotations

import sys


def _selfcheck() -> int:
    import random

    from .analysis.equivalence import check_network
    from .core.algebra import maximum
    from .core.function import enumerate_domain
    from .core.lattice import check_lattice_laws, standard_domain
    from .core.properties import verify
    from .core.synthesis import max_from_min_lt, synthesize
    from .core.table import FIG7_TABLE, NormalizedTable
    from .neuron.response import ResponseFunction
    from .neuron.srm0 import SRM0Neuron
    from .neuron.srm0_network import build_srm0_network

    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    print("repro selfcheck — Space-Time Algebra (Smith, ISCA 2018)")

    check(
        "lattice laws (bounded distributive lattice, §III.D)",
        not check_lattice_laws(standard_domain(5)),
    )

    lemma2 = max_from_min_lt().as_function()
    check(
        "Lemma 2: max from min+lt, exhaustive window 8",
        all(lemma2(a, b) == maximum(a, b) for a, b in enumerate_domain(2, 8)),
    )

    net = synthesize(FIG7_TABLE)
    check(
        "Theorem 1: Fig. 7 table synthesis ([3,4,5] -> 6)",
        net.as_function()(3, 4, 5) == 6,
    )
    check(
        "s-t properties of the synthesized network",
        verify(net.as_function(), window=4).ok,
    )
    check(
        "three execution semantics agree (denotational/event/CMOS)",
        check_network(net, window=3).ok,
    )

    table = NormalizedTable.random(3, window=3, n_rows=5, rng=random.Random(1))
    synthesized = synthesize(table).as_function()
    check(
        "Theorem 1 on a random table (exhaustive)",
        all(
            synthesized(*vec) == table.evaluate_causal(vec)
            for vec in enumerate_domain(3, table.max_entry() + 1)
        ),
    )

    base = ResponseFunction.piecewise_linear(amplitude=2, rise=1, fall=3)
    neuron = SRM0Neuron.homogeneous(2, [2, 1], base_response=base, threshold=3)
    fig12 = build_srm0_network(neuron).as_function()
    check(
        "Fig. 12 SRM0 construction == behavioral neuron (exhaustive)",
        all(
            fig12(*vec) == neuron.fire_time(vec)
            for vec in enumerate_domain(2, 5)
        ),
    )

    from .racelogic.shortest_path import dijkstra, race_shortest_paths, random_dag

    graph = random_dag(12, edge_probability=0.35, rng=random.Random(2))
    check(
        "race-logic shortest paths == Dijkstra",
        race_shortest_paths(graph, 0) == dijkstra(graph, 0),
    )

    print(
        f"\n{'ALL CHECKS PASSED' if not failures else f'{failures} CHECK(S) FAILED'}"
    )
    return 1 if failures else 0


def _conformance(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro conformance",
        description=(
            "Differential conformance sweep: run seeded random networks "
            "through every evaluation backend (interpreted, compiled "
            "batch, event-driven, GRL circuit), diff their outputs over "
            "adversarial volleys, shrink any disagreement to a minimal "
            "reproducer, and self-check the harness by injecting faults "
            "that must be caught."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="first case seed")
    parser.add_argument(
        "--count", type=int, default=50, help="number of seeded cases"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small cases and short volleys (CI smoke budget)",
    )
    parser.add_argument(
        "--no-grl",
        action="store_true",
        help="skip the cycle-accurate GRL circuit backend",
    )
    parser.add_argument(
        "--no-faults",
        action="store_true",
        help="skip the fault-injection self-check",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw witnesses without minimizing them",
    )
    parser.add_argument(
        "--emit",
        action="store_true",
        help="print the generated regression test for each finding",
    )
    args = parser.parse_args(argv)

    from .testing import run_conformance

    report = run_conformance(
        args.seed,
        args.count,
        smoke=args.smoke,
        include_grl=not args.no_grl,
        with_faults=not args.no_faults,
        shrink=not args.no_shrink,
    )
    print(report.summary())
    if args.emit:
        for mismatch in report.mismatches:
            if mismatch.regression_test:
                print("\n# --- regression test ---")
                print(mismatch.regression_test)
        if report.fault_report is not None:
            for detection in report.fault_report.detections:
                if detection.regression_test:
                    print("\n# --- fault reproducer ---")
                    print(detection.regression_test)
    return 0 if report.ok else 1


def _info() -> int:
    import repro

    print(f"repro {repro.__version__}")
    print("Space-Time Algebra: A Model for Neocortical Computation")
    print("(J. E. Smith, ISCA 2018) — full Python reproduction")
    print("\npackages:")
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        module = getattr(repro, name)
        doc = (module.__doc__ or "").strip().splitlines()
        print(f"  repro.{name:<10} {doc[0] if doc else ''}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    command = args[0] if args else "info"
    if command == "selfcheck":
        return _selfcheck()
    if command == "conformance":
        return _conformance(args[1:])
    if command == "info":
        return _info()
    print(f"unknown command {command!r}; try: info, selfcheck, conformance")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
