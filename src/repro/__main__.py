"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``selfcheck`` — run the library's core equivalence and property checks
  (the paper's headline claims) and print a pass/fail summary.  Useful
  after installation or porting to a new Python.
* ``conformance`` — the differential conformance sweep: seeded random
  networks through every evaluation backend, plus the fault-injection
  self-check (injected mutants must be caught).  See
  ``python -m repro conformance --help``.
* ``trace`` — run one volley through a seeded SRM0 column on every
  backend, check the canonical spike traces are byte-identical, and
  print/export the trace (JSONL and Chrome ``chrome://tracing`` JSON).
* ``ir`` — lower a seeded column to the s-t program IR and report the
  optimizer pass pipeline's node counts, pass by pass.
* ``kernels`` — the s-t kernel standard library: list the registry, or
  ``--demo <name>`` to run a kernel's demo volley through every backend
  (byte-identity checked) and print its inferred function-table
  contract.
* ``stats`` — runtime metrics: counters, timers and the plan-cache
  hit/miss record, optionally after exercising every backend once; with
  ``--json`` the serving-layer section (queue depth, batch histogram,
  latency quantiles) rides along.
* ``runtime`` — the unified execution runtime: every registered engine
  with capabilities and availability, the policy-resolved serving
  engine, and the cache tiers (``--json`` for the full record).
* ``train`` — online STDP through the training plane, locally: stream
  the seeded classification scenario (or an NDJSON ``--source``) through
  ingestion → trainer → snapshot → promote and report the holdout
  accuracy-vs-steps curve; ``--show`` queries a saved lineage document.
* ``serve`` — the asynchronous micro-batching inference service: TCP
  newline-delimited JSON, a sharded worker-process pool, fingerprint-
  keyed model registry.  See ``python -m repro serve --help``.
* ``loadgen`` — drive a running server with seeded volleys and byte-check
  every response against a direct local ``evaluate_batch``.
* ``top`` — live terminal dashboard for a running server: throughput,
  queue gauges, per-stage latency quantiles, worker pool and
  flight-recorder state (``--once`` for a single scriptable frame).
* ``info`` — version and package inventory.

Exit status is non-zero when a selfcheck, conformance, trace, or
loadgen conformance check fails.
"""

from __future__ import annotations

import sys


def _selfcheck() -> int:
    import random

    from .analysis.equivalence import check_network
    from .core.algebra import maximum
    from .core.function import enumerate_domain
    from .core.lattice import check_lattice_laws, standard_domain
    from .core.properties import verify
    from .core.synthesis import max_from_min_lt, synthesize
    from .core.table import FIG7_TABLE, NormalizedTable
    from .neuron.response import ResponseFunction
    from .neuron.srm0 import SRM0Neuron
    from .neuron.srm0_network import build_srm0_network

    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    print("repro selfcheck — Space-Time Algebra (Smith, ISCA 2018)")

    check(
        "lattice laws (bounded distributive lattice, §III.D)",
        not check_lattice_laws(standard_domain(5)),
    )

    lemma2 = max_from_min_lt().as_function()
    check(
        "Lemma 2: max from min+lt, exhaustive window 8",
        all(lemma2(a, b) == maximum(a, b) for a, b in enumerate_domain(2, 8)),
    )

    net = synthesize(FIG7_TABLE)
    check(
        "Theorem 1: Fig. 7 table synthesis ([3,4,5] -> 6)",
        net.as_function()(3, 4, 5) == 6,
    )
    check(
        "s-t properties of the synthesized network",
        verify(net.as_function(), window=4).ok,
    )
    check(
        "three execution semantics agree (denotational/event/CMOS)",
        check_network(net, window=3).ok,
    )

    table = NormalizedTable.random(3, window=3, n_rows=5, rng=random.Random(1))
    synthesized = synthesize(table).as_function()
    check(
        "Theorem 1 on a random table (exhaustive)",
        all(
            synthesized(*vec) == table.evaluate_causal(vec)
            for vec in enumerate_domain(3, table.max_entry() + 1)
        ),
    )

    base = ResponseFunction.piecewise_linear(amplitude=2, rise=1, fall=3)
    neuron = SRM0Neuron.homogeneous(2, [2, 1], base_response=base, threshold=3)
    fig12 = build_srm0_network(neuron).as_function()
    check(
        "Fig. 12 SRM0 construction == behavioral neuron (exhaustive)",
        all(
            fig12(*vec) == neuron.fire_time(vec)
            for vec in enumerate_domain(2, 5)
        ),
    )

    from .racelogic.shortest_path import dijkstra, race_shortest_paths, random_dag

    graph = random_dag(12, edge_probability=0.35, rng=random.Random(2))
    check(
        "race-logic shortest paths == Dijkstra",
        race_shortest_paths(graph, 0) == dijkstra(graph, 0),
    )

    print(
        f"\n{'ALL CHECKS PASSED' if not failures else f'{failures} CHECK(S) FAILED'}"
    )
    return 1 if failures else 0


def _conformance(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro conformance",
        description=(
            "Differential conformance sweep: run seeded random networks "
            "through every evaluation backend (interpreted, compiled "
            "batch, event-driven, GRL circuit, native arena), diff their outputs over "
            "adversarial volleys, shrink any disagreement to a minimal "
            "reproducer, and self-check the harness by injecting faults "
            "that must be caught."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="first case seed")
    parser.add_argument(
        "--count", type=int, default=50, help="number of seeded cases"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small cases and short volleys (CI smoke budget)",
    )
    parser.add_argument(
        "--no-grl",
        action="store_true",
        help="skip the cycle-accurate GRL circuit backend",
    )
    parser.add_argument(
        "--no-faults",
        action="store_true",
        help="skip the fault-injection self-check",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw witnesses without minimizing them",
    )
    parser.add_argument(
        "--emit",
        action="store_true",
        help="print the generated regression test for each finding",
    )
    parser.add_argument(
        "--optimize",
        action="store_true",
        help=(
            "diff the backends on IR pass-pipeline output instead of the "
            "raw networks (certifies the optimizer)"
        ),
    )
    parser.add_argument(
        "--family",
        metavar="NAME",
        help=(
            "pin every case to one generator family (layered, srm0, wta, "
            "kwta, microweight, kernels) instead of the weighted mix"
        ),
    )
    parser.add_argument(
        "--engines",
        metavar="NAMES",
        help=(
            "comma-separated engine names or keys resolved through the "
            "runtime registry (e.g. 'interpreted,native' or "
            "'interpreted,auto'); default: every registered backend"
        ),
    )
    args = parser.parse_args(argv)

    from .testing import run_conformance

    oracles = None
    if args.engines:
        from .runtime.registry import AUTO, ENGINES

        try:
            oracles = [
                ENGINES.resolve(AUTO) if name == AUTO else ENGINES.create(name)
                for name in (n.strip() for n in args.engines.split(","))
                if name
            ]
        except ValueError as error:
            print(f"error: {error}")
            return 2
    try:
        report = run_conformance(
            args.seed,
            args.count,
            smoke=args.smoke,
            include_grl=not args.no_grl,
            with_faults=not args.no_faults,
            shrink=not args.no_shrink,
            optimize=args.optimize,
            family=args.family,
            oracles=oracles,
        )
    except ValueError as error:
        print(f"error: {error}")
        return 2
    print(report.summary())
    if args.emit:
        for mismatch in report.mismatches:
            if mismatch.regression_test:
                print("\n# --- regression test ---")
                print(mismatch.regression_test)
        if report.fault_report is not None:
            for detection in report.fault_report.detections:
                if detection.regression_test:
                    print("\n# --- fault reproducer ---")
                    print(detection.regression_test)
    return 0 if report.ok else 1


def _demo_column(seed: int, *, smoke: bool):
    """The seeded SRM0 demo column (shared with the serving layer).

    Deterministic in *seed*: the same seed always yields the same
    weights, threshold, and volley — so trace exports are reproducible
    and a ``loadgen`` client can rebuild the model a ``serve`` process
    is serving.
    """
    from .serve.demo import demo_column

    return demo_column(seed, smoke=smoke)


def _trace(argv: list[str]) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Run one volley through a seeded SRM0 column on every "
            "execution backend, record each backend's canonical spike "
            "trace, and require the traces to be byte-identical.  "
            "Exports JSON-lines and Chrome chrome://tracing formats."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="column/volley seed")
    parser.add_argument(
        "--smoke", action="store_true", help="smaller column (CI smoke budget)"
    )
    parser.add_argument(
        "--no-grl",
        action="store_true",
        help="skip the cycle-accurate GRL circuit backend",
    )
    parser.add_argument(
        "--jsonl", metavar="PATH", help="write the canonical JSONL trace here"
    )
    parser.add_argument(
        "--chrome",
        metavar="PATH",
        help="write Chrome chrome://tracing JSON here",
    )
    args = parser.parse_args(argv)

    from .obs.trace import first_divergence, to_chrome_trace, to_jsonl
    from .testing.oracles import default_oracles

    network, volley = _demo_column(args.seed, smoke=args.smoke)
    print(f"tracing {network.name}: volley {volley} -> "
          f"{len(network.nodes)} nodes, outputs {network.output_names}")

    traces = {}
    for oracle in default_oracles(include_grl=not args.no_grl):
        trace = oracle.trace(network, volley)
        if trace is None:
            print(f"  {oracle.name:<15} skipped (cannot trace this case)")
            continue
        traces[oracle.name] = trace
        print(f"  {oracle.name:<15} {len(trace)} spike(s)")
    if not traces:
        print("no backend produced a trace")
        return 1

    reference_name, reference = next(iter(traces.items()))
    document = to_jsonl(reference, network)
    divergent = False
    for name, trace in traces.items():
        if to_jsonl(trace, network) != document:
            divergent = True
            split = first_divergence(reference, trace)
            detail = (
                split.describe(reference_name, name, network=network)
                if split is not None
                else "traces differ"
            )
            print(f"TRACE DIVERGENCE {reference_name} vs {name}: {detail}")
    if not divergent:
        print(
            f"canonical traces byte-identical across {len(traces)} "
            f"backend(s): {', '.join(traces)}"
        )

    print()
    print(document, end="")
    if args.jsonl:
        with open(args.jsonl, "w") as handle:
            handle.write(document)
        print(f"wrote {args.jsonl}")
    if args.chrome:
        chrome = to_chrome_trace(
            reference, network, label=f"{network.name} {volley}"
        )
        with open(args.chrome, "w") as handle:
            json.dump(chrome, handle, indent=1)
        print(f"wrote {args.chrome}")
    return 1 if divergent else 0


def _ir(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro ir",
        description=(
            "Lower a seeded SRM0 column to the s-t program IR and run "
            "the optimizer pass pipeline, reporting node counts pass by "
            "pass.  The same lowering and passes feed all four "
            "execution backends."
        ),
    )
    parser.add_argument(
        "--describe",
        action="store_true",
        help="print the pass-by-pass node-count report and the program",
    )
    parser.add_argument("--seed", type=int, default=0, help="column seed")
    parser.add_argument(
        "--smoke", action="store_true", help="smaller column (CI smoke budget)"
    )
    parser.add_argument(
        "--passes",
        nargs="+",
        metavar="PASS",
        help="run only these passes, in order (default: full pipeline)",
    )
    args = parser.parse_args(argv)

    from .ir import PassManager, lower, pass_names

    try:
        manager = PassManager(args.passes)
    except ValueError as error:
        print(f"error: {error}")
        print(f"available passes: {', '.join(pass_names())}")
        return 2

    network, _ = _demo_column(args.seed, smoke=args.smoke)
    program = lower(network)
    print(
        f"lowered {network.name}: {len(program.nodes)} node(s), "
        f"depth {program.depth}, fingerprint {program.fingerprint()[:12]}"
    )
    optimized, report = manager.run(program)
    if args.describe:
        print(report.describe())
        print()
        print(optimized.pretty())
    else:
        print(report.describe().splitlines()[0])
    return 0


def _kernels(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro kernels",
        description=(
            "The s-t kernel standard library (repro.kernels): STICK-style "
            "interval arithmetic, latch, barrier, router, and accumulator "
            "kernels with named ports and per-kernel conformance "
            "contracts.  With no arguments, lists the registry.  --demo "
            "runs a kernel's demo volley through every execution backend "
            "(outputs must be byte-identical) and prints its inferred "
            "function tables.  Serve a kernel with `python -m repro serve "
            "--kernel <name>`."
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="list the kernel registry"
    )
    parser.add_argument(
        "--demo",
        metavar="NAME",
        help="run NAME's demo volley on all backends + print its contract",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        help="override the function-table window for --demo",
    )
    parser.add_argument(
        "--no-grl",
        action="store_true",
        help="skip the cycle-accurate GRL circuit backend in --demo",
    )
    args = parser.parse_args(argv)

    from .kernels import KERNELS, KernelError, build_kernel

    if args.demo is None:
        print(f"registered s-t kernels ({len(KERNELS)}):")
        for name, spec in KERNELS.items():
            kernel = spec.build()
            ports = f"{', '.join(kernel.inputs)} -> {', '.join(kernel.outputs)}"
            print(f"  {name:<20} {ports}")
            print(f"  {'':<20} {spec.description}")
        print("\nrun one: python -m repro kernels --demo <name>")
        return 0

    try:
        kernel = build_kernel(args.demo)
    except KernelError as error:
        print(f"error: {error}")
        return 2
    spec = KERNELS[args.demo]
    print(kernel.describe())

    from .testing.oracles import default_oracles, run_backends

    volley = spec.demo_volley
    print(f"\ndemo volley {volley}:")
    run = run_backends(
        kernel.network(),
        [volley],
        oracles=default_oracles(include_grl=not args.no_grl),
    )
    rows = {}
    for backend, results in sorted(run.results.items()):
        if results[0] is None:
            reason = run.skipped.get(backend, "unsupported case")
            print(f"  {backend:<15} skipped ({reason})")
            continue
        rows[backend] = results[0]
        outputs = dict(zip(kernel.outputs, results[0]))
        print(f"  {backend:<15} {outputs}")
    agree = len(set(rows.values())) <= 1
    print(
        f"  -> {'byte-identical across ' + str(len(rows)) + ' backend(s)' if agree else 'BACKENDS DISAGREE'}"
    )

    window = args.window if args.window is not None else spec.table_window
    print(f"\nfunction-table contract (window {window}):")
    for port, table in kernel.contract(window=window).items():
        rows = sorted(table.rows.items(), key=lambda item: str(item[0]))
        print(f"  {port}: {len(rows)} row(s)")
        for vector, value in rows[:12]:
            print(f"    {vector} -> {value}")
        if len(rows) > 12:
            print(f"    ... {len(rows) - 12} more")
    return 0 if agree else 1


def _stats(argv: list[str]) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro stats",
        description=(
            "Runtime metrics: counters, timers, and high-water marks "
            "from the observability registry, plus the compiled-plan "
            "cache record.  Metrics are per-process; use --exercise to "
            "run a small workload through every backend first."
        ),
    )
    parser.add_argument(
        "--exercise",
        action="store_true",
        help="run a demo volley through all backends before reporting",
    )
    parser.add_argument(
        "--plan-cache",
        action="store_true",
        help="include the plan-cache size and hit/miss record",
    )
    parser.add_argument(
        "--clear-plan-cache",
        action="store_true",
        help="clear the compiled-plan cache before reporting",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    parser.add_argument(
        "--reset", action="store_true", help="reset the registry after reporting"
    )
    args = parser.parse_args(argv)

    from . import runtime
    from .obs.metrics import METRICS, reset_metrics

    if args.clear_plan_cache:
        runtime.clear_caches(results=False)
    if args.exercise:
        from .testing.oracles import run_backends

        network, volley = _demo_column(0, smoke=True)
        run_backends(network, [volley])

    if args.json:
        from .serve.stats import serve_stats_snapshot
        from .train import training_stats_snapshot

        payload = {
            "metrics": METRICS.snapshot(),
            "serve": serve_stats_snapshot(),
            "training": training_stats_snapshot(),
        }
        if args.plan_cache or args.clear_plan_cache:
            # "cache" is the unified runtime surface; "plan_cache"
            # keeps the pre-runtime shape for existing consumers.
            payload["cache"] = runtime.cache_info()
            payload["plan_cache"] = runtime.legacy_plan_cache_info()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(METRICS.render())
        if args.plan_cache or args.clear_plan_cache:
            info = runtime.legacy_plan_cache_info()
            print("plan cache:")
            for key in sorted(info):
                value = info[key]
                if isinstance(value, dict):  # the nested native-cache record
                    print(f"  {key}:")
                    for sub in sorted(value):
                        print(f"    {sub:<20} {value[sub]}")
                else:
                    print(f"  {key:<20} {value}")
            result = runtime.cache_info()["result"]
            print("result cache:")
            for key in sorted(result):
                print(f"  {key:<20} {result[key]}")
    if args.reset:
        reset_metrics()
        print("metrics reset")
    return 0


def _train(argv: list[str]) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro train",
        description=(
            "Online STDP training through the training plane, locally: "
            "bootstrap the seeded latency-coded classification scenario "
            "(repro.train.scenario) onto an in-process service, stream "
            "its training split (or an NDJSON --source) through the "
            "ingestion queue, snapshot on cadence, and report the "
            "holdout accuracy-vs-steps curve the lineage records.  The "
            "same plane runs against live traffic via "
            "`python -m repro serve --train`; query a saved provenance "
            "chain with --show."
        ),
    )
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized scenario cut"
    )
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=25,
        metavar="N",
        help="compile/register/promote every N presentations",
    )
    parser.add_argument(
        "--epochs",
        type=int,
        default=1,
        help="passes over the training stream",
    )
    parser.add_argument(
        "--source",
        metavar="PATH",
        help="replay an NDJSON training stream instead of the scenario split",
    )
    parser.add_argument(
        "--lineage-out",
        metavar="PATH",
        help="write the lineage document (JSON) here",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable run report"
    )
    parser.add_argument(
        "--show",
        metavar="PATH",
        help="print a saved lineage document and exit (no training)",
    )
    args = parser.parse_args(argv)

    from .train import ModelLineage

    if args.show:
        try:
            lineage = ModelLineage.load(args.show)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: {error}")
            return 2
        doc = lineage.describe()
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
            return 0
        print(
            f"lineage {doc['alias']!r}: {doc['snapshots']} snapshot(s), "
            f"{doc['total_steps']} applied step(s), head "
            f"{(doc['head'] or '?')[:12]}"
        )
        for record in doc["records"]:
            accuracy = (
                f"accuracy {record['accuracy']:.3f}"
                if record["accuracy"] is not None
                else "accuracy -"
            )
            parent = (record["parent"] or "seed")[:12]
            print(
                f"  {parent} -> {record['child'][:12]}  "
                f"+{record['steps']} steps ({record['total_steps']} total)  "
                f"{accuracy}"
            )
        return 0

    from .serve.batcher import BatchPolicy
    from .serve.pool import InlineWorkerPool
    from .serve.registry import ModelRegistry
    from .serve.service import TNNService
    from .train import TrainingPlane, classification_scenario, file_source

    scenario = classification_scenario(smoke=args.smoke, seed=args.seed)
    if args.source:
        try:
            items = list(file_source(args.source))
        except (OSError, ValueError) as error:
            print(f"error: {error}")
            return 2
        n_inputs = scenario.column.n_inputs
        for item in items:
            if len(item.volley) != n_inputs:
                print(
                    f"error: {args.source}: scenario column takes "
                    f"{n_inputs} lines, got {len(item.volley)}"
                )
                return 2
    else:
        items = scenario.items()

    registry = ModelRegistry()
    service = TNNService(
        registry,
        InlineWorkerPool(registry.documents()),
        policy=BatchPolicy(max_batch=8, max_wait_s=0.001),
    )
    alias = f"{scenario.name}@live"
    plane = TrainingPlane(
        service,
        scenario.column,
        alias=alias,
        trainer=scenario.make_trainer(),
        snapshot_every=args.snapshot_every,
        probe=scenario.probe,
        model_name=scenario.name,
    )
    service.training = plane
    try:
        seed_model = plane.bootstrap()
        untrained = plane.last_accuracy
        if not args.json:
            print(
                f"scenario {scenario.name!r}: {len(items)} training "
                f"volley(s) x {args.epochs} epoch(s), "
                f"{len(scenario.holdout)} holdout"
            )
            print(
                f"  seed {seed_model[:12]} @ {alias}: "
                f"holdout accuracy {untrained:.3f}"
            )
        for _epoch in range(max(1, args.epochs)):
            for item in items:
                plane.train_step(item)
        plane.snapshot()  # fold any sub-cadence remainder (dedups if unchanged)
        doc = plane.lineage.describe()
        if args.lineage_out:
            plane.lineage.save(args.lineage_out)
        stats = plane.stats()
        curve = [
            {
                "steps": record["total_steps"],
                "accuracy": record["accuracy"],
                "model": record["child"],
            }
            for record in doc["records"]
        ]
        report = {
            "scenario": scenario.name,
            "alias": alias,
            "seed": args.seed,
            "seed_model": seed_model,
            "final_model": plane.live_fingerprint,
            "untrained_accuracy": untrained,
            "final_accuracy": plane.last_accuracy,
            "presented": stats["presented"],
            "applied": stats["applied"],
            "snapshots": stats["snapshots"],
            "promotions": stats["promotions"],
            "curve": curve,
        }
    finally:
        service.close()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for point in curve[1:]:
            accuracy = (
                f"{point['accuracy']:.3f}"
                if point["accuracy"] is not None
                else "-"
            )
            print(
                f"  step {point['steps']:>5}: holdout accuracy {accuracy} "
                f"({point['model'][:12]})"
            )
        print(
            f"  final {report['final_model'][:12]}: "
            f"{report['untrained_accuracy']:.3f} -> "
            f"{report['final_accuracy']:.3f} over {report['applied']} "
            f"applied step(s), {report['snapshots']} snapshot(s)"
        )
        if args.lineage_out:
            print(f"wrote {args.lineage_out}")
    improved = (
        report["final_accuracy"] is not None
        and report["untrained_accuracy"] is not None
        and report["final_accuracy"] >= report["untrained_accuracy"]
    )
    return 0 if improved else 1


def _runtime(argv: list[str]) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro runtime",
        description=(
            "The unified execution runtime: every registered engine with "
            "its capability descriptor and availability probe, the "
            "policy-resolved serving engine, and the cache tiers "
            "(plan namespaces + result cache)."
        ),
    )
    parser.add_argument(
        "--engine",
        default="auto",
        metavar="POLICY",
        help="selection policy to resolve (default 'auto')",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    args = parser.parse_args(argv)

    from . import runtime
    from .runtime.registry import ENGINES

    try:
        selected = ENGINES.resolve(args.engine)
    except ValueError as error:
        print(f"error: {error}")
        return 2
    if args.json:
        payload = {
            "engines": ENGINES.describe(),
            "policy": args.engine,
            "selected": selected.key,
            "cache": runtime.cache_info(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"execution runtime: {len(ENGINES.names())} engines; "
        f"policy {args.engine!r} -> {selected.name} (key {selected.key!r})"
    )
    for record in ENGINES.describe():
        caps = record["capabilities"]
        flags = ", ".join(sorted(k for k, v in caps.items() if v is True))
        status = (
            "available"
            if record["available"] is None
            else f"unavailable: {record['available']}"
        )
        print(f"  {record['name']:<15} key={record['key']:<12} {status}")
        print(f"  {'':<15} capabilities: {flags or '-'}")
    info = runtime.cache_info()
    plan, result = info["plan"], info["result"]
    print(
        f"plan cache: {plan['entries']} entries / {plan['bytes']} bytes "
        f"across {len(plan['namespaces'])} namespaces "
        f"(budget: {plan['budget']})"
    )
    print(
        f"result cache: {result['entries']} entries / {result['bytes']} "
        f"bytes (hits {result['hits']}, misses {result['misses']}, "
        f"evictions {result['evictions']})"
    )
    print(
        f"native mode: {info['native_mode']} "
        f"(numba available: {info['numba_available']})"
    )
    return 0


def _info() -> int:
    import repro

    print(f"repro {repro.__version__}")
    print("Space-Time Algebra: A Model for Neocortical Computation")
    print("(J. E. Smith, ISCA 2018) — full Python reproduction")
    print("\npackages:")
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        module = getattr(repro, name)
        doc = (module.__doc__ or "").strip().splitlines()
        print(f"  repro.{name:<10} {doc[0] if doc else ''}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    command = args[0] if args else "info"
    if command == "selfcheck":
        return _selfcheck()
    if command == "conformance":
        return _conformance(args[1:])
    if command == "trace":
        return _trace(args[1:])
    if command == "ir":
        return _ir(args[1:])
    if command == "kernels":
        return _kernels(args[1:])
    if command == "stats":
        return _stats(args[1:])
    if command == "runtime":
        return _runtime(args[1:])
    if command == "train":
        return _train(args[1:])
    if command == "serve":
        from .serve.server import serve_main

        return serve_main(args[1:])
    if command == "loadgen":
        from .serve.loadgen import loadgen_main

        return loadgen_main(args[1:])
    if command == "top":
        from .serve.top import top_main

        return top_main(args[1:])
    if command == "info":
        return _info()
    print(
        f"unknown command {command!r}; try: info, selfcheck, conformance, "
        "trace, ir, kernels, stats, runtime, train, serve, loadgen, top"
    )
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
