"""Verification of the defining s-t function properties.

The paper defines space-time functions by three properties (computability,
causality, invariance) and bounded s-t functions by a fourth (bounded
history).  This module turns each definition into an executable check that
either passes or returns a concrete counterexample, over an exhaustive
finite window or a caller-supplied sample of input vectors.

These checkers are the backbone of the test suite: every construction in
the library (primitives, sorting networks, SRM0 neurons, WTA, synthesized
minterm networks, compiled GRL circuits) is pushed through them.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Optional

from .function import SpaceTimeFunction, enumerate_domain
from .value import INF, Infinity, Time, t_min


@dataclass(frozen=True)
class Counterexample:
    """A concrete input vector witnessing a property violation."""

    prop: str
    inputs: tuple[Time, ...]
    detail: str

    def __str__(self) -> str:
        return f"{self.prop} fails at {self.inputs}: {self.detail}"


@dataclass
class VerificationReport:
    """Outcome of verifying one or more properties on a function."""

    function_name: str
    checked_vectors: int = 0
    violations: list[Counterexample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def merge(self, other: "VerificationReport") -> "VerificationReport":
        self.checked_vectors += other.checked_vectors
        self.violations.extend(other.violations)
        return self

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"{self.function_name}: {status} "
            f"({self.checked_vectors} vectors checked)"
        )


def check_causality(
    func: SpaceTimeFunction, vectors: Iterable[tuple[Time, ...]]
) -> VerificationReport:
    """Check the paper's causality property on each vector.

    For output ``z = F(x)``: (a) every input strictly later than ``z`` is
    irrelevant — replacing it with ``∞`` must not change the output; and
    (b) a finite ``z`` satisfies ``z >= x_min`` (no output before the first
    input, no spontaneous spikes).
    """
    report = VerificationReport(func.name)
    for vec in vectors:
        report.checked_vectors += 1
        z = func(*vec)
        if not isinstance(z, Infinity):
            lo = t_min(vec)
            if isinstance(lo, Infinity) or z < lo:
                report.violations.append(
                    Counterexample(
                        "causality",
                        vec,
                        f"finite output {z} precedes earliest input {lo} "
                        "(spontaneous spike)",
                    )
                )
                continue
        for h, xh in enumerate(vec):
            if xh > z:
                masked = vec[:h] + (INF,) + vec[h + 1:]
                z_masked = func(*masked)
                if z_masked != z:
                    report.violations.append(
                        Counterexample(
                            "causality",
                            vec,
                            f"input #{h} ({xh}) is later than output {z} "
                            f"but masking it changes output to {z_masked}",
                        )
                    )
    return report


def check_invariance(
    func: SpaceTimeFunction,
    vectors: Iterable[tuple[Time, ...]],
    *,
    shifts: Sequence[int] = (1,),
) -> VerificationReport:
    """Check invariance: ``F(x + c) = F(x) + c`` for each shift ``c``.

    The paper states the property for ``c = 1``; it extends to any constant
    by induction, and checking a few larger shifts catches off-by-one bugs
    that a single unit shift can miss.
    """
    report = VerificationReport(func.name)
    for vec in vectors:
        report.checked_vectors += 1
        z = func(*vec)
        for c in shifts:
            shifted = tuple(INF if isinstance(v, Infinity) else v + c for v in vec)
            z_shifted = func(*shifted)
            expected = INF if isinstance(z, Infinity) else z + c
            if z_shifted != expected:
                report.violations.append(
                    Counterexample(
                        "invariance",
                        vec,
                        f"shift by {c}: expected {expected}, got {z_shifted}",
                    )
                )
    return report


def check_totality(
    func: SpaceTimeFunction, vectors: Iterable[tuple[Time, ...]]
) -> VerificationReport:
    """Check computability/totality: every vector yields a valid value.

    ``SpaceTimeFunction.__call__`` already validates the output type; this
    check makes exceptions visible as counterexamples instead of crashes.
    """
    report = VerificationReport(func.name)
    for vec in vectors:
        report.checked_vectors += 1
        try:
            func(*vec)
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            report.violations.append(
                Counterexample("totality", vec, f"raised {exc!r}")
            )
    return report


def check_bounded_history(
    func: SpaceTimeFunction,
    vectors: Iterable[tuple[Time, ...]],
    k: int,
) -> VerificationReport:
    """Check the bounded-history property for window size *k*.

    The paper's definition — inputs more than ``k`` older than ``x_max``
    are forgettable — is checked on the *causality-masked* vector: inputs
    strictly later than the output are first replaced by ``∞``, since a
    causal device cannot have observed them when it fired.  Without this
    masking the literal definition contradicts causality for any function
    that can fire before all its inputs arrive (e.g. an SRM0 neuron whose
    threshold one early spike can cross): a late input would drag
    ``x_max`` forward and retroactively declare the early trigger
    "stale".  With it, ``min`` and realistic neurons are bounded while
    ``max`` (which must remember arbitrarily old spikes) correctly is
    not.
    """
    report = VerificationReport(func.name)
    for vec in vectors:
        report.checked_vectors += 1
        z = func(*vec)
        effective = tuple(INF if v > z else v for v in vec)
        finite = [v for v in effective if not isinstance(v, Infinity)]
        if not finite:
            continue
        x_max = max(finite)
        for j, xj in enumerate(effective):
            if not isinstance(xj, Infinity) and xj < x_max - k:
                masked = effective[:j] + (INF,) + effective[j + 1:]
                z_masked = func(*masked)
                if z_masked != z:
                    report.violations.append(
                        Counterexample(
                            "bounded-history",
                            vec,
                            f"stale input #{j} ({xj}, window {k}, latest "
                            f"observable {x_max}) still affects output "
                            f"({z} -> {z_masked})",
                        )
                    )
    return report


def verify(
    func: SpaceTimeFunction,
    *,
    window: int = 4,
    bound: Optional[int] = None,
    vectors: Optional[Iterable[tuple[Time, ...]]] = None,
) -> VerificationReport:
    """Run all s-t property checks on *func*.

    By default enumerates the exhaustive domain ``[0..window, ∞]^arity``;
    pass *vectors* to check a custom (e.g. sampled) domain instead.  When
    *bound* is given, the bounded-history property is checked too.
    """
    vecs = list(
        vectors
        if vectors is not None
        else enumerate_domain(func.arity, window)
    )
    report = check_totality(func, vecs)
    report.merge(check_causality(func, vecs))
    report.merge(check_invariance(func, vecs, shifts=(1, 3)))
    if bound is not None:
        report.merge(check_bounded_history(func, vecs, bound))
    return report


def sample_vectors(
    arity: int,
    *,
    count: int,
    max_time: int,
    inf_probability: float = 0.2,
    rng: Optional[random.Random] = None,
) -> list[tuple[Time, ...]]:
    """Random input vectors for property checks on large-arity functions.

    Exhaustive enumeration is exponential in arity; beyond 4–5 inputs a
    random sample with a controlled share of ``∞`` coordinates keeps
    verification tractable while still exercising absent-spike paths.
    """
    if not 0.0 <= inf_probability <= 1.0:
        raise ValueError("inf_probability must be in [0, 1]")
    rng = rng or random.Random(0)
    vectors: list[tuple[Time, ...]] = []
    for _ in range(count):
        vec: list[Time] = []
        for _ in range(arity):
            if rng.random() < inf_probability:
                vec.append(INF)
            else:
                vec.append(rng.randint(0, max_time))
        vectors.append(tuple(vec))
    return vectors
