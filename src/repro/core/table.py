"""Normalized function tables (§III.F).

A bounded s-t function can be specified the way a Boolean function is
specified by a truth table: a *normalized function table* lists the input
vectors with at least one 0 coordinate that produce a finite output,
together with that output.  Thanks to invariance, this finite table
defines a total function over all of ``N0∞``:

* to evaluate an arbitrary vector, subtract ``x_min`` (normalize), look up
  the row, and add ``x_min`` back to the row's output;
* vectors whose normalization is not in the table map to ``∞``.

This module provides the table data structure, its normal-form validation,
evaluation, inference of a table from a black-box function, and random
table generation for tests and benchmarks.  Table → network synthesis
(Theorem 1) lives in :mod:`repro.core.synthesis`.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping
from typing import Optional

from .function import SpaceTimeFunction, enumerate_normalized_domain
from .value import (
    INF,
    Infinity,
    Time,
    check_time,
    check_vector,
    is_normalized,
    normalize,
    shift,
    t_min,
)


class TableError(ValueError):
    """Raised when rows violate the paper's normal-form rules."""


class NormalizedTable:
    """A normalized function table: finite spec of a bounded s-t function.

    Normal form (paper rules): every row's input vector contains at least
    one 0, and every row's output is finite.  Rows whose output would be
    ``∞`` are simply absent.  Causality additionally requires each row's
    output to be ``>= 0`` (which ``N0∞`` guarantees) — and for the table to
    describe a *causal* function, the output must not precede the earliest
    input, which for a normalized row means ``y >= 0``; always true.  The
    stronger constraint that each non-∞ input later than the output be
    irrelevant is a cross-row property checked by
    :meth:`causality_violations`.
    """

    def __init__(self, rows: Mapping[tuple[Time, ...], Time] | Iterable[tuple[Iterable[Time], Time]]):
        items = rows.items() if isinstance(rows, Mapping) else rows
        parsed: dict[tuple[Time, ...], Time] = {}
        arity: Optional[int] = None
        for inputs, output in items:
            vec = check_vector(inputs, name="row input")
            out = check_time(output, name="row output")
            if arity is None:
                arity = len(vec)
            elif len(vec) != arity:
                raise TableError(
                    f"inconsistent row arity: expected {arity}, got {len(vec)}"
                )
            if not is_normalized(vec):
                raise TableError(f"row {vec} has no 0 entry (not normalized)")
            if isinstance(out, Infinity):
                raise TableError(
                    f"row {vec} maps to ∞; such rows must be omitted"
                )
            if vec in parsed and parsed[vec] != out:
                raise TableError(
                    f"row {vec} listed twice with different outputs "
                    f"({parsed[vec]} and {out})"
                )
            parsed[vec] = out
        if arity is None:
            raise TableError("a table needs at least one row (or use arity=)")
        self._rows = parsed
        self.arity = arity

    # -- basic container behaviour -------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(sorted(self._rows.items(), key=_row_sort_key))

    def __contains__(self, vec: tuple[Time, ...]) -> bool:
        return tuple(vec) in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NormalizedTable):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(frozenset(self._rows.items()))

    def __repr__(self) -> str:
        return f"NormalizedTable(arity={self.arity}, rows={len(self)})"

    @property
    def rows(self) -> dict[tuple[Time, ...], Time]:
        """A copy of the row mapping (normalized inputs → finite output)."""
        return dict(self._rows)

    # -- semantics -------------------------------------------------------------
    def evaluate(self, inputs: Iterable[Time]) -> Time:
        """Evaluate the specified function on an arbitrary input vector.

        The paper's recipe: normalize by subtracting ``x_min``; if the
        normalized vector has a table row, add ``x_min`` back to the row's
        output; otherwise the output is ``∞``.
        """
        vec = check_vector(inputs)
        if len(vec) != self.arity:
            raise TypeError(f"expected {self.arity} inputs, got {len(vec)}")
        normalized, lo = normalize(vec)
        if isinstance(lo, Infinity):
            return INF
        out = self._rows.get(normalized)
        if out is None:
            return INF
        return out + lo

    def as_function(self, name: Optional[str] = None) -> SpaceTimeFunction:
        """Wrap the table as a callable :class:`SpaceTimeFunction`."""
        return SpaceTimeFunction(
            lambda *xs: self.evaluate(xs),
            self.arity,
            name=name or f"table[{len(self)} rows]",
        )

    # -- diagnostics -------------------------------------------------------------
    def max_entry(self) -> int:
        """Largest finite value appearing anywhere in the table.

        An upper bound on the history window ``k`` of the specified
        function, used to size exhaustive verification domains.
        """
        values = [v for row in self._rows for v in row if not isinstance(v, Infinity)]
        values.extend(self._rows.values())
        return max(values, default=0)

    def causality_violations(self) -> list[tuple[tuple[Time, ...], str]]:
        """Rows that make the specified function non-causal.

        For a row with output ``y``, any input coordinate ``x_h > y`` must
        be irrelevant: the row obtained by setting ``x_h = ∞`` must exist
        and have the same output.  (And since rows are normalized with
        ``x_min = 0``, ``y >= x_min`` always holds.)
        """
        problems: list[tuple[tuple[Time, ...], str]] = []
        for vec, y in self._rows.items():
            for h, xh in enumerate(vec):
                if xh > y:
                    masked = vec[:h] + (INF,) + vec[h + 1:]
                    if self._rows.get(masked) != y:
                        problems.append(
                            (
                                vec,
                                f"input #{h}={xh} exceeds output {y} but row "
                                f"{masked} is missing or differs",
                            )
                        )
        return problems

    def is_causal(self) -> bool:
        """True if the table specifies a causal function."""
        return not self.causality_violations()

    # -- causal (realizable) semantics ---------------------------------------
    #
    # A physical device cannot distinguish "input i never spikes" from
    # "input i spikes later than my own output" — at firing time the two
    # histories are identical.  The paper's minterm construction (Fig. 9)
    # therefore treats a row coordinate of ∞ as matching any applied value
    # *strictly later than the row's output* ("if a value applied to x3 is
    # greater than the minterm's output, it has no effect").  The methods
    # below implement that interpretation.

    def is_canonical(self) -> bool:
        """True if every finite row coordinate is <= the row's output.

        A finite coordinate later than the output is physically
        unobservable before the device fires, so a *canonical* causal table
        writes such coordinates as ∞.  Canonical tables are exactly the
        ones the Theorem 1 synthesis reproduces.
        """
        return all(
            all(isinstance(v, Infinity) or v <= y for v in vec)
            for vec, y in self._rows.items()
        )

    def canonicalize(self) -> "NormalizedTable":
        """Rewrite finite coordinates later than the output as ∞.

        Merges rows that become identical; conflicting merged outputs raise
        :class:`TableError` (such a table described a physically
        unrealizable function).
        """
        rows: dict[tuple[Time, ...], Time] = {}
        for vec, y in self._rows.items():
            fixed = tuple(INF if v > y else v for v in vec)
            if fixed in rows and rows[fixed] != y:
                raise TableError(
                    f"rows collapsing to {fixed} disagree "
                    f"({rows[fixed]} vs {y}); table is not realizable"
                )
            rows[fixed] = y
        return NormalizedTable(rows)

    @staticmethod
    def _row_matches(vec: tuple[Time, ...], y: Time, w: tuple[Time, ...]) -> bool:
        """Does normalized input *w* causally match row ``vec -> y``?

        Finite coordinates must match exactly; ∞ coordinates match ∞ or
        any value strictly later than *y* (a spike the device fires before
        seeing).
        """
        for v, x in zip(vec, w):
            if isinstance(v, Infinity):
                if not (isinstance(x, Infinity) or x > y):
                    return False
            elif x != v:
                return False
        return True

    def evaluate_causal(self, inputs: Iterable[Time]) -> Time:
        """Evaluate under the causal (physically realizable) semantics.

        Matching rows contribute their (shift-adjusted) outputs and the
        result is their minimum — exactly what the final ``min`` of the
        minterm canonical form computes.  For tables without ∞ row
        coordinates this coincides with :meth:`evaluate`.
        """
        vec = check_vector(inputs)
        if len(vec) != self.arity:
            raise TypeError(f"expected {self.arity} inputs, got {len(vec)}")
        normalized, lo = normalize(vec)
        if isinstance(lo, Infinity):
            return INF
        outputs = [
            y
            for row, y in self._rows.items()
            if self._row_matches(row, y, normalized)
        ]
        if not outputs:
            return INF
        return min(outputs) + lo

    def as_causal_function(self, name: Optional[str] = None) -> SpaceTimeFunction:
        """Wrap :meth:`evaluate_causal` as a :class:`SpaceTimeFunction`."""
        return SpaceTimeFunction(
            lambda *xs: self.evaluate_causal(xs),
            self.arity,
            name=name or f"causal-table[{len(self)} rows]",
        )

    # -- construction -------------------------------------------------------------
    @classmethod
    def from_function(
        cls,
        func: SpaceTimeFunction,
        *,
        window: int,
        include_inf: bool = True,
    ) -> "NormalizedTable":
        """Infer the table of a bounded s-t function by enumeration.

        Evaluates *func* on every normalized vector whose finite entries
        lie in ``[0, window]`` and records the rows with finite output.
        *window* must be at least the function's history bound ``k`` for
        the table to be exact.
        """
        rows: dict[tuple[Time, ...], Time] = {}
        for vec in enumerate_normalized_domain(func.arity, window, include_inf=include_inf):
            out = func(*vec)
            if not isinstance(out, Infinity):
                rows[vec] = out
        return cls(rows)

    @classmethod
    def from_network(
        cls,
        network,
        *,
        window: int,
        output: Optional[str] = None,
        params: Optional[Mapping[str, Time]] = None,
        include_inf: bool = True,
    ) -> "NormalizedTable":
        """Infer the table of a network output by *batched* enumeration.

        The batched counterpart of :meth:`from_function` for the common
        case where the black box is a
        :class:`~repro.network.graph.Network`: the entire normalized
        window domain is evaluated in one compiled call
        (:func:`repro.network.compile_plan.evaluate_batch`) instead of
        one Python network walk per vector.  Produces exactly the table
        ``from_function(network.as_function(output), window=window)``
        would.
        """
        from ..network.compile_plan import INF_I64, evaluate_batch
        from ..network.graph import NetworkError

        if output is None:
            if len(network.outputs) != 1:
                raise NetworkError(
                    "from_network needs output= when the network has "
                    f"{len(network.outputs)} outputs"
                )
            output = next(iter(network.outputs))
        if output not in network.outputs:
            raise NetworkError(f"no output named {output!r}")
        column = list(network.outputs).index(output)
        arity = len(network.input_ids)
        vectors = list(
            enumerate_normalized_domain(arity, window, include_inf=include_inf)
        )
        matrix = evaluate_batch(network, vectors, params=params)
        rows: dict[tuple[Time, ...], Time] = {}
        for vec, out in zip(vectors, matrix[:, column].tolist()):
            if out != INF_I64:
                rows[vec] = int(out)
        return cls(rows)

    @classmethod
    def random(
        cls,
        arity: int,
        *,
        window: int,
        n_rows: int,
        max_extra_delay: int = 3,
        inf_probability: float = 0.25,
        rng: Optional[random.Random] = None,
    ) -> "NormalizedTable":
        """Generate a random canonical table (for tests and benchmarks).

        Each row's output is its largest finite input plus a random extra
        delay up to *max_extra_delay*, which makes every finite coordinate
        ``<= y`` — the generated table is always canonical, hence it
        specifies a physically realizable bounded s-t function under
        :meth:`evaluate_causal`.
        """
        rng = rng or random.Random(0)
        rows: dict[tuple[Time, ...], Time] = {}
        attempts = 0
        while len(rows) < n_rows and attempts < n_rows * 50:
            attempts += 1
            vec: list[Time] = []
            for _ in range(arity):
                if rng.random() < inf_probability:
                    vec.append(INF)
                else:
                    vec.append(rng.randint(0, window))
            if not any(v == 0 for v in vec):
                if all(isinstance(v, Infinity) for v in vec):
                    continue
                lo = t_min(vec)
                vec = list(shift(vec, -int(lo)))
            finite = [v for v in vec if not isinstance(v, Infinity)]
            if not finite:
                continue
            base = max(finite)
            key = tuple(vec)
            if key not in rows:
                rows[key] = base + rng.randint(0, max_extra_delay)
        return cls(rows)

    def pretty(self) -> str:
        """Human-readable rendering in the style of the paper's Fig. 7."""
        header = " | ".join(f"x{i + 1}" for i in range(self.arity)) + " | y"
        lines = [header, "-" * len(header)]
        for vec, y in self:
            cells = " | ".join(f"{v!s:>2}" for v in vec)
            lines.append(f"{cells} | {y!s:>2}")
        return "\n".join(lines)


def _row_sort_key(item: tuple[tuple[Time, ...], Time]):
    vec, _ = item
    return tuple(
        (1, 0) if isinstance(v, Infinity) else (0, v) for v in vec
    )


#: The example table from the paper's Fig. 7: three inputs, three rows.
#: (Note the second row of the printed figure shows "8" where the
#: surrounding text implies "∞"; the minterm walkthrough in Fig. 9 treats
#: x3 of minterm 2 as absent, so the row is (1, 0, ∞) -> 2.)
FIG7_TABLE = NormalizedTable(
    {
        (0, 1, 2): 3,
        (1, 0, INF): 2,
        (2, 2, 0): 2,
    }
)
