"""Core of the reproduction: the space-time algebra itself.

Values (:mod:`~repro.core.value`), primitive operations
(:mod:`~repro.core.algebra`), the lattice structure
(:mod:`~repro.core.lattice`), the s-t function model and its defining
properties (:mod:`~repro.core.function`, :mod:`~repro.core.properties`),
normalized function tables (:mod:`~repro.core.table`), and the
constructive completeness results (:mod:`~repro.core.synthesis`).
"""

from .algebra import PRIMITIVES, add, delay, eq, first_n, inc, le, lt, maximum, minimum
from .function import (
    SpaceTimeFunction,
    enumerate_domain,
    enumerate_normalized_domain,
    st_function,
)
from .completeness import (
    NON_IMPLEMENTABLE,
    Classification,
    classify_function,
    implementable_fraction,
)
from .minimize import minimize, minimize_with_generalization
from .lattice import (
    BOTTOM,
    TOP,
    LawViolation,
    check_lattice_laws,
    has_complement,
    join,
    leq,
    meet,
    standard_domain,
)
from .properties import (
    Counterexample,
    VerificationReport,
    check_bounded_history,
    check_causality,
    check_invariance,
    check_totality,
    sample_vectors,
    verify,
)
from .synthesis import (
    max_from_min_lt,
    max_into,
    max_tree,
    synthesis_cost,
    synthesize,
)
from .table import FIG7_TABLE, NormalizedTable, TableError
from .value import (
    INF,
    Infinity,
    Time,
    TimeVector,
    as_time,
    check_time,
    check_vector,
    finite_values,
    is_finite,
    is_normalized,
    is_time,
    normalize,
    shift,
    t_max,
    t_min,
)

__all__ = [
    "BOTTOM",
    "FIG7_TABLE",
    "INF",
    "NON_IMPLEMENTABLE",
    "PRIMITIVES",
    "TOP",
    "Classification",
    "Counterexample",
    "Infinity",
    "LawViolation",
    "NormalizedTable",
    "SpaceTimeFunction",
    "TableError",
    "Time",
    "TimeVector",
    "VerificationReport",
    "add",
    "as_time",
    "check_bounded_history",
    "check_causality",
    "check_invariance",
    "check_lattice_laws",
    "check_time",
    "classify_function",
    "check_totality",
    "check_vector",
    "delay",
    "enumerate_domain",
    "enumerate_normalized_domain",
    "eq",
    "finite_values",
    "first_n",
    "has_complement",
    "implementable_fraction",
    "inc",
    "is_finite",
    "is_normalized",
    "is_time",
    "join",
    "le",
    "leq",
    "lt",
    "max_from_min_lt",
    "max_into",
    "max_tree",
    "maximum",
    "meet",
    "minimize",
    "minimize_with_generalization",
    "minimum",
    "normalize",
    "sample_vectors",
    "shift",
    "st_function",
    "standard_domain",
    "synthesis_cost",
    "synthesize",
    "t_max",
    "t_min",
    "verify",
]
