"""Primitive operations of the space-time algebra.

The paper's §III.C and §III.D define four primitive functions over
``N0∞``:

* ``inc`` (+1) — emit a spike one time unit after the input spike.
* ``min`` (∧, *first arrival*) — emit at the time of the earliest input.
* ``max`` (∨, *last arrival*) — emit at the time of the latest input.
* ``lt`` (≺) — emit at time ``a`` iff ``a`` strictly precedes ``b``;
  otherwise emit nothing (``∞``).

``{min, lt, inc}`` are functionally complete for bounded s-t functions
(Theorem 1); ``max`` is derivable (Lemma 2) but is provided as a primitive
for convenience, mirroring its direct GRL implementation (an AND gate).

All functions here are *pure semantics*: they map times to times.  The
structural/network counterparts live in :mod:`repro.network.blocks`, and
the digital-circuit counterparts in :mod:`repro.racelogic.gates`.
"""

from __future__ import annotations

from .value import INF, Infinity, Time, check_time, t_max, t_min


def inc(x: Time, amount: int = 1) -> Time:
    """Increment: delay a spike by *amount* (default 1) time units.

    ``inc(∞) = ∞`` — a spike that never happens is never delayed into
    existence.  Generalizes the paper's unit increment to any non-negative
    constant (a chain of ``amount`` unit increments).
    """
    if amount < 0:
        raise ValueError(f"increment amount must be non-negative, got {amount}")
    x = check_time(x, name="x")
    if isinstance(x, Infinity):
        return INF
    return x + amount


def delay(x: Time, amount: int) -> Time:
    """Alias of :func:`inc` with a mandatory amount, for circuit-flavoured code."""
    return inc(x, amount)


def minimum(*xs: Time) -> Time:
    """First arrival (∧): the meet of the lattice.

    Emits a spike at the time of the earliest input spike; ``∞`` if no
    input ever spikes.  Variadic; the empty meet is ``∞`` (top).
    """
    return t_min(check_time(x, name="x") for x in xs)


def maximum(*xs: Time) -> Time:
    """Last arrival (∨): the join of the lattice.

    Emits a spike at the time of the latest input spike — it must wait for
    *all* inputs, so a single ``∞`` input makes the output ``∞``.
    Variadic; the empty join is ``0`` (bottom).
    """
    return t_max(check_time(x, name="x") for x in xs)


def lt(a: Time, b: Time) -> Time:
    """Strictly-earlier-than (≺): ``a`` if ``a < b``, else ``∞``.

    This is the algebra's only *conditional* primitive: it passes the ``a``
    spike through only when ``a`` wins the race against ``b``.
    """
    a = check_time(a, name="a")
    b = check_time(b, name="b")
    return a if a < b else INF


def le(a: Time, b: Time) -> Time:
    """Earlier-or-simultaneous: ``a`` if ``a <= b``, else ``∞``.

    Derived: ``le(a, b) = lt(a, inc(b))``.
    """
    return lt(a, inc(b))


def eq(a: Time, b: Time) -> Time:
    """Simultaneity: ``a`` if ``a == b`` (both finite), else ``∞``.

    Derived: ``eq(a, b) = min(le(a, b), le(b, a))`` restricted to finite
    agreement — two absent spikes are not "simultaneous" because there is
    no event to time-stamp, so ``eq(∞, ∞) = ∞``.
    """
    a = check_time(a, name="a")
    b = check_time(b, name="b")
    if isinstance(a, Infinity) or isinstance(b, Infinity):
        return INF
    return a if a == b else INF


def first_n(values: tuple[Time, ...], n: int) -> Time:
    """Time of the *n*-th earliest spike (1-indexed); ``∞`` if fewer spikes.

    ``first_n(v, 1)`` equals ``minimum(*v)``.  This is the semantics a
    sorting network's *n*-th output wire computes, and is the core of the
    SRM0 threshold construction (the θ-th up step).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    ordered = sorted(check_time(v) for v in values)
    if n > len(ordered):
        return INF
    return ordered[n - 1]


def add(a: Time, b: Time) -> Time:
    """Addition on ``N0∞`` (the algebra is closed under addition).

    Note: unlike the four primitives, two-operand addition is *not* an s-t
    function — it is not invariant (``(a+1)+(b+1) != (a+b)+1``), as the
    paper's concluding remarks emphasize.  It is provided for metric and
    bookkeeping code, not for building networks.
    """
    a = check_time(a, name="a")
    b = check_time(b, name="b")
    if isinstance(a, Infinity) or isinstance(b, Infinity):
        return INF
    return a + b


#: The paper's primitive set, keyed by the names used in Fig. 6 / Fig. 16.
PRIMITIVES = {
    "inc": inc,
    "min": minimum,
    "max": maximum,
    "lt": lt,
}
