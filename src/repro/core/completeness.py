"""Executable versions of the paper's completeness remarks.

Concluding remarks 2–3: the s-t primitives are complete *only* for s-t
functions, not for all multi-valued functions — complementation-like
operations "are tantamount to time flowing backwards", and the preferred
arithmetic primitives (addition, multiplication) are not invariant.

This module makes those statements checkable:

* :func:`classify_function` — decide whether a black-box function over a
  finite window is implementable (causal + invariant + total), and if not,
  return the property it breaks with a witness;
* canonical non-implementable examples (:data:`NEGATION_LIKE`,
  :data:`ADDITION`, :data:`MULTIPLICATION`, :data:`TIME_REVERSAL`) used
  by tests and the documentation;
* :func:`implementable_fraction` — measure how sparse s-t functions are
  among all functions on a window, quantifying "a proper subset of
  possible functions".
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Optional

from .function import SpaceTimeFunction, enumerate_domain
from .properties import (
    Counterexample,
    check_causality,
    check_invariance,
    check_totality,
)
from .value import INF, Infinity, Time


@dataclass(frozen=True)
class Classification:
    """Verdict on whether a function is a space-time function."""

    is_space_time: bool
    failed_property: Optional[str] = None
    witness: Optional[Counterexample] = None

    def __str__(self) -> str:
        if self.is_space_time:
            return "space-time function (causal, invariant, total)"
        return f"NOT a space-time function: {self.witness}"


def classify_function(
    func: SpaceTimeFunction, *, window: int = 4
) -> Classification:
    """Check the defining properties over an exhaustive window.

    A pass is evidence (exhaustive up to *window*), a failure is a proof:
    the returned witness is a concrete violation.
    """
    vectors = list(enumerate_domain(func.arity, window))
    for name, check in (
        ("totality", check_totality),
        ("causality", check_causality),
        ("invariance", check_invariance),
    ):
        report = check(func, vectors)
        if not report.ok:
            return Classification(
                is_space_time=False,
                failed_property=name,
                witness=report.violations[0],
            )
    return Classification(is_space_time=True)


def _negation_like(x: Time) -> Time:
    """"Invert" a spike within an 8-slot frame: t -> 7 - t.

    The temporal analogue of logical NOT.  It is invariant-breaking —
    shifting the input forward shifts the output *backward*, i.e. time
    flows the wrong way (the paper's remark 3).
    """
    if isinstance(x, Infinity):
        return 0  # "no spike" must become "spike" for a true complement
    return max(0, 7 - int(x))


def _addition(a: Time, b: Time) -> Time:
    if isinstance(a, Infinity) or isinstance(b, Infinity):
        return INF
    return int(a) + int(b)


def _multiplication(a: Time, b: Time) -> Time:
    if isinstance(a, Infinity) or isinstance(b, Infinity):
        return INF
    return int(a) * int(b)


def _time_reversal(a: Time, b: Time) -> Time:
    """Emit the earlier input at the *later* input's original time slot
    reflected — pure anticipation; breaks causality outright."""
    if isinstance(a, Infinity) or isinstance(b, Infinity):
        return INF
    return min(int(a), int(b)) if a != b else 0


NEGATION_LIKE = SpaceTimeFunction(_negation_like, 1, name="negation-like")
ADDITION = SpaceTimeFunction(_addition, 2, name="addition")
MULTIPLICATION = SpaceTimeFunction(_multiplication, 2, name="multiplication")
TIME_REVERSAL = SpaceTimeFunction(_time_reversal, 2, name="time-reversal")

#: The canonical non-implementable functions of the concluding remarks.
NON_IMPLEMENTABLE = (NEGATION_LIKE, ADDITION, MULTIPLICATION, TIME_REVERSAL)


def implementable_fraction(
    *,
    arity: int = 1,
    window: int = 2,
    samples: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> tuple[int, int]:
    """Count s-t functions among all functions on a finite window.

    Enumerates (or samples) total functions
    ``f : {0..window, ∞}^arity -> {0..2*window, ∞}`` and classifies each.
    Returns ``(space_time_count, total_count)``.  Even on tiny windows
    the fraction is small — the paper's remark that the algebra is
    deliberately complete only for a proper subset.
    """
    domain = list(enumerate_domain(arity, window))
    codomain: list[Time] = [*range(2 * window + 1), INF]
    total_functions = len(codomain) ** len(domain)

    def classify_assignment(values) -> bool:
        # Enumerated functions exist only on the window, so check the
        # causality/invariance constraints *restricted to it* (shifted or
        # masked vectors must themselves stay inside the window).  This
        # over-counts slightly — a window-consistent function might admit
        # no total extension — so the returned fraction is an upper bound
        # on the true share of s-t functions.
        table = dict(zip(domain, values))
        for vec, z in table.items():
            finite = [v for v in vec if not isinstance(v, Infinity)]
            if not isinstance(z, Infinity):
                if not finite or z < min(finite):
                    return False  # spontaneous spike
            for h, xh in enumerate(vec):
                if xh > z:
                    masked = vec[:h] + (INF,) + vec[h + 1:]
                    if table[masked] != z:
                        return False  # sees the future
            if not finite:
                continue  # the all-∞ vector is fixed under shifting
            shift = 1
            while True:
                shifted = tuple(
                    INF if isinstance(v, Infinity) else v + shift for v in vec
                )
                if shifted not in table:
                    break
                expected = INF if isinstance(z, Infinity) else z + shift
                expressible = isinstance(expected, Infinity) or expected <= 2 * window
                if expressible and table[shifted] != expected:
                    return False  # not invariant
                shift += 1
        return True

    if samples is None:
        hits = sum(
            1
            for values in itertools.product(codomain, repeat=len(domain))
            if classify_assignment(values)
        )
        return hits, total_functions
    rng = rng or random.Random(0)
    hits = 0
    for _ in range(samples):
        values = tuple(rng.choice(codomain) for _ in domain)
        if classify_assignment(values):
            hits += 1
    return hits, samples
