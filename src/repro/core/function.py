"""Space-time functions: the paper's §III.C definitions as code.

A function ``z = F(x1…xq)`` over ``N0∞`` is a *space-time function* when it
is

1. **computable** — a total function (always produces a value in ``N0∞``),
2. **causal** — for every input ``x_h > z``, replacing ``x_h`` with ``∞``
   leaves the output unchanged; and a finite output never precedes the
   earliest input (``z >= x_min``), so there are no spontaneous spikes,
3. **invariant** — shifting every input by one unit shifts the output by
   one unit.

A *bounded* s-t function additionally forgets inputs more than ``k`` units
older than the latest input.

:class:`SpaceTimeFunction` wraps a Python callable with an arity and gives
it vector-call, composition, and equality-on-domain utilities.  The
property *checkers* for causality/invariance/boundedness live in
:mod:`repro.core.properties`; this module holds the function model itself.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterable, Iterator
from typing import Optional

from .value import INF, Time, check_time, check_vector

RawFunction = Callable[..., Time]


class SpaceTimeFunction:
    """A named, fixed-arity function over ``N0∞``.

    Wraps *func* (a callable taking ``arity`` positional time arguments)
    and validates inputs and output on every call, so property checkers
    and synthesized networks can trust the values they see.

    The wrapper makes no attempt to *enforce* causality or invariance —
    arbitrary callables may violate them.  Use
    :func:`repro.core.properties.verify` to check; the constructors in
    :mod:`repro.core.synthesis` only ever build conforming functions.
    """

    def __init__(self, func: RawFunction, arity: int, name: Optional[str] = None):
        if arity < 1:
            raise ValueError(f"arity must be >= 1, got {arity}")
        self._func = func
        self.arity = arity
        self.name = name or getattr(func, "__name__", "anonymous")

    def __call__(self, *xs: Time) -> Time:
        if len(xs) != self.arity:
            raise TypeError(
                f"{self.name} takes {self.arity} inputs, got {len(xs)}"
            )
        inputs = check_vector(xs)
        result = self._func(*inputs)
        return check_time(result, name=f"{self.name} output")

    def on_vector(self, xs: Iterable[Time]) -> Time:
        """Apply to an iterable of inputs (convenience for table code)."""
        return self(*xs)

    def __repr__(self) -> str:
        return f"SpaceTimeFunction({self.name!r}, arity={self.arity})"

    # -- structural operations ------------------------------------------------
    def compose(self, *inners: "SpaceTimeFunction") -> "SpaceTimeFunction":
        """Feedforward composition: ``self(g1(xs1), g2(xs2), …)``.

        There must be exactly ``self.arity`` inner functions; the result's
        inputs are the concatenation of the inner functions' inputs.  By
        Lemma 1, composing s-t functions yields an s-t function.
        """
        if len(inners) != self.arity:
            raise ValueError(
                f"compose needs {self.arity} inner functions, got {len(inners)}"
            )
        spans: list[tuple[int, int]] = []
        offset = 0
        for g in inners:
            spans.append((offset, offset + g.arity))
            offset += g.arity

        outer = self

        def composed(*xs: Time) -> Time:
            mids = [g(*xs[lo:hi]) for g, (lo, hi) in zip(inners, spans)]
            return outer(*mids)

        name = f"{self.name}∘({', '.join(g.name for g in inners)})"
        return SpaceTimeFunction(composed, offset, name=name)

    def equal_on(self, other: "SpaceTimeFunction", domain: Iterable[tuple[Time, ...]]) -> bool:
        """True if self and *other* agree on every vector in *domain*."""
        if other.arity != self.arity:
            return False
        return all(self(*v) == other(*v) for v in domain)


def st_function(arity: int, name: Optional[str] = None):
    """Decorator form: ``@st_function(2)`` wraps a callable."""

    def wrap(func: RawFunction) -> SpaceTimeFunction:
        return SpaceTimeFunction(func, arity, name=name or func.__name__)

    return wrap


# ---------------------------------------------------------------------------
# Domain enumeration
# ---------------------------------------------------------------------------

def enumerate_domain(arity: int, window: int, *, include_inf: bool = True) -> Iterator[tuple[Time, ...]]:
    """Yield every input vector with finite entries in ``[0, window]``.

    With *include_inf*, ``∞`` is also a possible coordinate.  The count is
    ``(window + 2) ** arity`` vectors, so keep ``arity`` and ``window``
    small for exhaustive checks (the paper's plausible neurons need windows
    of only 8–16 units).
    """
    values: list[Time] = list(range(window + 1))
    if include_inf:
        values.append(INF)
    yield from itertools.product(values, repeat=arity)


def enumerate_normalized_domain(arity: int, window: int, *, include_inf: bool = True) -> Iterator[tuple[Time, ...]]:
    """Yield only *normalized* vectors (at least one coordinate is 0).

    These are exactly the rows a normalized function table may contain;
    every other vector's output follows from invariance.
    """
    for vec in enumerate_domain(arity, window, include_inf=include_inf):
        if any(v == 0 for v in vec):
            yield vec
