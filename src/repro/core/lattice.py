"""The space-time algebra as a bounded distributive lattice.

§III.D: the s-t algebra is ``S = (N0∞, ∧, ∨, 0, ∞)`` — a bounded
distributive lattice with bottom 0 and top ∞, well-ordered and closed
under addition, and *not* complemented.

This module packages the lattice structure (meet/join/order/bounds) and
machine-checkable statements of its laws.  The law checkers exist so that
the test suite (and the Fig. 6 benchmark) can verify the algebraic claims
over exhaustive finite windows and hypothesis-generated samples instead of
taking them on faith.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from .value import INF, Time, check_time, t_max, t_min

BOTTOM: Time = 0
TOP: Time = INF


def meet(*xs: Time) -> Time:
    """Lattice meet (∧) = first arrival = min.  Empty meet is the top."""
    return t_min(check_time(x) for x in xs)


def join(*xs: Time) -> Time:
    """Lattice join (∨) = last arrival = max.  Empty join is the bottom."""
    return t_max(check_time(x) for x in xs)


def leq(a: Time, b: Time) -> bool:
    """The lattice partial order (here a total order: S is a chain)."""
    return check_time(a) <= check_time(b)


# ---------------------------------------------------------------------------
# Law checking
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LawViolation:
    """A witness that a lattice law failed on specific elements."""

    law: str
    elements: tuple[Time, ...]
    detail: str

    def __str__(self) -> str:
        return f"{self.law} violated at {self.elements}: {self.detail}"


def _pairs(domain: list[Time]) -> Iterable[tuple[Time, Time]]:
    for a in domain:
        for b in domain:
            yield a, b


def _triples(domain: list[Time]) -> Iterable[tuple[Time, Time, Time]]:
    for a in domain:
        for b in domain:
            for c in domain:
                yield a, b, c


def check_lattice_laws(domain: Iterable[Time]) -> list[LawViolation]:
    """Check every bounded-distributive-lattice law over *domain*.

    Returns a list of violations (empty when all laws hold).  Intended for
    exhaustive verification over small windows such as ``[0..k] + [∞]``.
    """
    elems = [check_time(x) for x in domain]
    bad: list[LawViolation] = []

    for a in elems:
        if meet(a, a) != a:
            bad.append(LawViolation("idempotence(∧)", (a,), f"a∧a={meet(a, a)}"))
        if join(a, a) != a:
            bad.append(LawViolation("idempotence(∨)", (a,), f"a∨a={join(a, a)}"))
        if meet(a, TOP) != a:
            bad.append(LawViolation("top-identity", (a,), f"a∧∞={meet(a, TOP)}"))
        if join(a, BOTTOM) != a:
            bad.append(LawViolation("bottom-identity", (a,), f"a∨0={join(a, BOTTOM)}"))

    for a, b in _pairs(elems):
        if meet(a, b) != meet(b, a):
            bad.append(LawViolation("commutativity(∧)", (a, b), "a∧b != b∧a"))
        if join(a, b) != join(b, a):
            bad.append(LawViolation("commutativity(∨)", (a, b), "a∨b != b∨a"))
        if meet(a, join(a, b)) != a:
            bad.append(LawViolation("absorption(∧∨)", (a, b), "a∧(a∨b) != a"))
        if join(a, meet(a, b)) != a:
            bad.append(LawViolation("absorption(∨∧)", (a, b), "a∨(a∧b) != a"))

    for a, b, c in _triples(elems):
        if meet(a, meet(b, c)) != meet(meet(a, b), c):
            bad.append(LawViolation("associativity(∧)", (a, b, c), ""))
        if join(a, join(b, c)) != join(join(a, b), c):
            bad.append(LawViolation("associativity(∨)", (a, b, c), ""))
        if meet(a, join(b, c)) != join(meet(a, b), meet(a, c)):
            bad.append(LawViolation("distributivity(∧ over ∨)", (a, b, c), ""))
        if join(a, meet(b, c)) != meet(join(a, b), join(a, c)):
            bad.append(LawViolation("distributivity(∨ over ∧)", (a, b, c), ""))

    return bad


def has_complement(a: Time, domain: Iterable[Time]) -> bool:
    """True if some ``b`` in *domain* satisfies ``a∧b = 0`` and ``a∨b = ∞``.

    The paper notes S is not complemented: only 0 and ∞ complement each
    other; every interior element has no complement (complementation would
    amount to time flowing backwards).
    """
    a = check_time(a)
    return any(
        meet(a, b) == BOTTOM and join(a, b) == TOP for b in domain
    )


def standard_domain(k: int) -> list[Time]:
    """The canonical finite test window ``[0, 1, …, k, ∞]``."""
    if k < 0:
        raise ValueError(f"window size must be non-negative, got {k}")
    return [*range(k + 1), INF]
