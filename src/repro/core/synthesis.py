"""Constructive completeness: Lemma 2 and Theorem 1 as code.

Two constructions from the paper's §III.G:

* :func:`max_from_min_lt` — Lemma 2 (Fig. 8): the ``max`` function built
  from ``min`` and ``lt`` only.  The construction here,

  ``max(a, b) = min( lt(b, lt(b, a)), lt(a, lt(a, b)) )``,

  passes each input through gated by "the other input has already
  arrived or never arrives": ``lt(b, a)`` fires (at ``b``) only when ``b``
  strictly precedes ``a``, so ``lt(b, lt(b, a))`` re-emits ``b`` exactly
  when ``b`` does *not* precede ``a`` — i.e. when ``b`` is the later (or
  simultaneous) input.  Symmetrically for ``a``; the final ``min`` merges
  the two cases (at most one is finite except on ties, where both carry
  the same value).

* :func:`synthesize` — Theorem 1 (Fig. 9): the minterm canonical form.
  Every row ``(v -> y)`` of a canonical normalized table becomes one
  minterm: a ``max`` over the row's finite coordinates delayed by
  ``δ_i = y - v_i``, raced (``lt``) against a ``min`` over the same
  coordinates delayed by ``δ_i + 1`` together with the row's ∞
  coordinates fed in directly.  The ``lt`` passes the value ``y`` iff the
  applied input matches the row; a final ``min`` merges all minterms.

  The synthesized network implements the table's *causal* semantics
  (:meth:`~repro.core.table.NormalizedTable.evaluate_causal`); for
  canonical tables without ∞ coordinates this equals the literal lookup
  semantics.
"""

from __future__ import annotations

from typing import Optional

from ..network.builder import NetworkBuilder, Ref, Source
from ..network.graph import Network
from .table import NormalizedTable, TableError
from .value import Infinity


def max_into(builder: NetworkBuilder, a: Source, b: Source) -> Ref:
    """Emit the Lemma 2 max construction into an existing builder.

    Uses one ``min`` and four ``lt`` blocks; no ``inc`` and no ``max``
    primitive.  Returns the ref of the output wire.
    """
    b_not_before_a = builder.lt(b, builder.lt(b, a), tag="lemma2")
    a_not_before_b = builder.lt(a, builder.lt(a, b), tag="lemma2")
    return builder.min(b_not_before_a, a_not_before_b, tag="lemma2")


def max_from_min_lt(name: str = "lemma2-max") -> Network:
    """Build the standalone two-input Lemma 2 network (Fig. 8)."""
    builder = NetworkBuilder(name)
    a = builder.input("a")
    b = builder.input("b")
    builder.output("c", max_into(builder, a, b))
    return builder.build()


def max_tree(builder: NetworkBuilder, sources: list[Source]) -> Ref:
    """A multi-input max as a balanced tree of Lemma 2 constructions."""
    if not sources:
        raise ValueError("max_tree needs at least one source")
    level = list(sources)
    while len(level) > 1:
        merged: list[Source] = []
        for i in range(0, len(level) - 1, 2):
            merged.append(max_into(builder, level[i], level[i + 1]))
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    head = level[0]
    return head if isinstance(head, Ref) else builder.min(head)


def synthesize(
    table: NormalizedTable,
    *,
    name: Optional[str] = None,
    use_max_primitive: bool = True,
    strict: bool = True,
) -> Network:
    """Theorem 1: compile a canonical normalized table into a network.

    With *use_max_primitive* the minterm's last-arrival stage uses the
    ``max`` node directly (as drawn in Fig. 9); without it, Lemma 2
    expansions are used so the result contains only ``min``/``lt``/``inc``
    — the strict primitive set of Theorem 1.

    With *strict* (default) a non-canonical table raises
    :class:`TableError`; pass ``strict=False`` to canonicalize
    automatically.
    """
    if not table.is_canonical():
        if strict:
            raise TableError(
                "table is not canonical (a finite coordinate exceeds its "
                "row output); call .canonicalize() or pass strict=False"
            )
        table = table.canonicalize()

    builder = NetworkBuilder(name or f"minterm[{len(table)} rows]")
    inputs = [builder.input(f"x{i + 1}") for i in range(table.arity)]

    minterms: list[Ref] = []
    for row_index, (vec, y) in enumerate(table):
        tag = f"minterm{row_index}"
        late_terms: list[Source] = []
        early_terms: list[Source] = []
        for x, v in zip(inputs, vec):
            if isinstance(v, Infinity):
                # Absent coordinate: feeds the min directly; any applied
                # spike at or before the row's output suppresses the match.
                early_terms.append(x)
            else:
                delta = y - v
                late_terms.append(builder.inc(x, delta, tag=tag))
                early_terms.append(builder.inc(x, delta + 1, tag=tag))
        if not late_terms:
            raise TableError(f"row {vec} has no finite coordinate")
        if use_max_primitive:
            last_arrival = builder.max(*late_terms, tag=tag)
        else:
            last_arrival = max_tree(builder, late_terms)
        first_suppressor = builder.min(*early_terms, tag=tag)
        minterms.append(builder.lt(last_arrival, first_suppressor, tag=tag))

    builder.output("y", builder.min(*minterms))
    return builder.build()


def synthesis_cost(table: NormalizedTable, *, use_max_primitive: bool = True) -> dict[str, int]:
    """Predicted block counts of :func:`synthesize` without building it.

    Useful for scaling studies: the canonical form is linear in
    ``rows × arity``, the temporal analogue of two-level logic.
    """
    n_rows = len(table)
    arity = table.arity
    finite_coords = sum(
        sum(1 for v in vec if not isinstance(v, Infinity)) for vec, _ in table
    )
    # inc nodes: two per finite coordinate, minus those with zero delta
    # (builder elides +0 increments).
    zero_deltas = sum(
        sum(1 for v in vec if not isinstance(v, Infinity) and y - v == 0)
        for vec, y in table
    )
    incs = 2 * finite_coords - zero_deltas
    lts = n_rows
    mins = n_rows + (1 if n_rows > 1 else 0)
    if use_max_primitive:
        maxes = sum(
            1
            for vec, _ in table
            if sum(1 for v in vec if not isinstance(v, Infinity)) > 1
        )
        lemma2_blocks = 0
    else:
        maxes = 0
        pairings = sum(
            max(0, sum(1 for v in vec if not isinstance(v, Infinity)) - 1)
            for vec, _ in table
        )
        lemma2_blocks = 5 * pairings
        lts += 4 * pairings
        mins += pairings
    return {
        "rows": n_rows,
        "arity": arity,
        "inc": incs,
        "min": mins,
        "max": maxes,
        "lt": lts,
        "lemma2_blocks": lemma2_blocks,
    }
