"""Normalized-table minimization.

The minterm canonical form costs one minterm per table row, so fewer rows
mean smaller synthesized networks (and smaller compiled circuits).  Two
reductions preserve the causal semantics exactly:

* **redundant-row removal** — a row is redundant when deleting it leaves
  :meth:`~repro.core.table.NormalizedTable.evaluate_causal` unchanged on
  every input: some other row matches every input it matched, with an
  output no later (the final ``min`` then never needs it).
* **coordinate generalization** — rewriting a finite coordinate ``v_i``
  to ∞ *widens* what a row matches; when the widened row stays consistent
  with the function (checked over the relevant window), the more general
  row can subsume siblings which then drop out as redundant.

:func:`minimize` applies removal alone (always safe, semantics exactly
preserved); :func:`minimize_with_generalization` additionally tries
widening and verifies exact equivalence over the table's window before
accepting each rewrite.
"""

from __future__ import annotations

from .function import enumerate_normalized_domain
from .table import NormalizedTable
from .value import INF, Infinity, Time


def _covers(
    covering: tuple[tuple[Time, ...], Time],
    covered: tuple[tuple[Time, ...], Time],
) -> bool:
    """Does row A match everything row B matches, no later?

    Coordinate-wise: A's finite coordinates must equal B's; A's ∞
    coordinates match B's coordinate when B's is also ∞, or when B's is
    finite but strictly later than A's output (then any input B matches
    there is > y_b >= ... must also be > y_a; requiring y_a <= y_b makes
    it sufficient).
    """
    vec_a, y_a = covering
    vec_b, y_b = covered
    if y_a > y_b:
        return False
    for a, b in zip(vec_a, vec_b):
        if isinstance(a, Infinity):
            # The covering row tolerates ∞ or anything later than y_a
            # here; a finite requirement b of the covered row is matched
            # only when it lands in that window.
            if not isinstance(b, Infinity) and b <= y_a:
                return False
        else:
            if isinstance(b, Infinity) or a != b:
                return False
    return True


def minimize(table: NormalizedTable) -> NormalizedTable:
    """Drop rows whose removal provably never changes the causal output.

    Coverage is a strict partial order on distinct rows (mutual coverage
    would force identical rows, which the table cannot hold), so its
    maximal rows survive and every dropped row stays matched — no later —
    by a survivor.  Sound and exact: the result's ``evaluate_causal``
    equals the original's on every input (a verified property in the
    test suite).
    """
    rows = list(table)
    kept: dict[tuple[Time, ...], Time] = {
        vec: y
        for i, (vec, y) in enumerate(rows)
        if not any(
            _covers(other, (vec, y))
            for j, other in enumerate(rows)
            if j != i
        )
    }
    return NormalizedTable(kept)


def minimize_with_generalization(
    table: NormalizedTable, *, window: int | None = None
) -> NormalizedTable:
    """Try widening finite coordinates to ∞, keeping exact equivalence.

    Each candidate rewrite is validated by exhaustively comparing causal
    semantics over the normalized window before being accepted, so the
    result is always exactly equivalent (at the cost of enumeration —
    use on the small tables of the low-resolution regime).
    """
    window = window if window is not None else table.max_entry() + 1
    reference = table

    def equivalent(candidate: NormalizedTable) -> bool:
        for vec in enumerate_normalized_domain(table.arity, window):
            if candidate.evaluate_causal(vec) != reference.evaluate_causal(vec):
                return False
        return True

    current = minimize(table)
    improved = True
    while improved:
        improved = False
        for vec, y in list(current):
            for i, coordinate in enumerate(vec):
                if isinstance(coordinate, Infinity):
                    continue
                widened_vec = vec[:i] + (INF,) + vec[i + 1:]
                if not any(not isinstance(v, Infinity) for v in widened_vec):
                    continue  # a row needs a finite coordinate
                if not any(v == 0 for v in widened_vec):
                    continue  # must stay normalized
                rows = current.rows
                del rows[vec]
                if widened_vec in rows and rows[widened_vec] != y:
                    continue
                rows[widened_vec] = y
                candidate = NormalizedTable(rows)
                if equivalent(candidate):
                    current = minimize(candidate)
                    improved = True
                    break
            if improved:
                break
    return current
