"""Values of the space-time algebra: the set ``N0∞``.

The paper models points in time as elements of ``N0∞``: zero, the natural
numbers, and a special top element ``∞`` that encodes "no spike on this
line".  ``∞`` obeys the usual conventions: ``∞ > n`` and ``∞ + n = ∞`` for
every natural ``n``.

This module provides:

* :data:`INF` — the singleton top element, with total-order comparisons and
  saturating arithmetic against Python ints.
* :data:`Time` — the type alias ``int | Infinity`` used throughout the
  library.
* Validation helpers (:func:`is_time`, :func:`check_time`,
  :func:`check_vector`) and coercion (:func:`as_time`).
* Vector utilities used by normalized function tables and network
  evaluation (:func:`t_min`, :func:`t_max`, :func:`normalize`,
  :func:`shift`).

Design note: finite times are plain Python ``int``s rather than a wrapper
class.  Simulations touch millions of time values; keeping them unboxed
keeps the library fast and lets callers use ordinary integer literals.
``Infinity`` is a dedicated singleton (not ``float('inf')``) so that
arithmetic never silently produces floats and ``repr`` stays exact.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Union


class Infinity:
    """The top element ``∞`` of ``N0∞``.

    A singleton: every construction returns the same instance, so identity
    checks (``x is INF``) are valid, though ``==`` works too.  Supports the
    operations the algebra requires: total-order comparison with ints and
    saturating addition/subtraction.
    """

    _instance: "Infinity | None" = None
    __slots__ = ()

    def __new__(cls) -> "Infinity":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    # -- ordering -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Infinity) or other == float("inf")

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __lt__(self, other: object) -> bool:
        return False

    def __le__(self, other: object) -> bool:
        return self.__eq__(other)

    def __gt__(self, other: object) -> bool:
        if isinstance(other, Infinity):
            return False
        if isinstance(other, (int, float)):
            return other != float("inf")
        return NotImplemented

    def __ge__(self, other: object) -> bool:
        if isinstance(other, (Infinity, int, float)):
            return True
        return NotImplemented

    def __hash__(self) -> int:
        return hash(float("inf"))

    # -- arithmetic (saturating) ---------------------------------------------
    def __add__(self, other: object) -> "Infinity":
        if isinstance(other, (int, Infinity)):
            return self
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other: object) -> "Infinity":
        # ∞ - n = ∞ for finite n; ∞ - ∞ is undefined in the algebra.
        if isinstance(other, Infinity):
            raise ArithmeticError("infinity - infinity is undefined in N0∞")
        if isinstance(other, int):
            return self
        return NotImplemented

    def __repr__(self) -> str:
        return "INF"

    def __str__(self) -> str:
        return "∞"

    def __bool__(self) -> bool:
        return True

    def __reduce__(self):
        # Keep the singleton property across pickling.
        return (Infinity, ())


INF = Infinity()

Time = Union[int, Infinity]
TimeVector = Sequence[Time]


def is_time(value: object) -> bool:
    """Return True if *value* is a member of ``N0∞``.

    Members are non-negative ints and :data:`INF`.  Booleans are rejected —
    they are ints in Python, but treating ``True`` as the time 1 invites
    silent confusion between logical and temporal code.
    """
    if isinstance(value, Infinity):
        return True
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def check_time(value: object, *, name: str = "value") -> Time:
    """Validate that *value* is in ``N0∞``, returning it unchanged.

    Raises :class:`TypeError` for non-members, :class:`ValueError` for
    negative ints.
    """
    if isinstance(value, Infinity):
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be a non-negative int or INF, got {value!r}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def as_time(value: object) -> Time:
    """Coerce *value* into ``N0∞``.

    Accepts non-negative ints, :data:`INF`, ``float('inf')``, ``None``
    (interpreted as "no spike"), and integral floats.  Anything else raises.
    """
    if isinstance(value, Infinity):
        return value
    if value is None:
        return INF
    if isinstance(value, float):
        if value == float("inf"):
            return INF
        if value.is_integer():
            return check_time(int(value))
        raise ValueError(f"non-integral float {value!r} is not a valid time")
    return check_time(value)


def check_vector(values: Iterable[object], *, name: str = "input") -> tuple[Time, ...]:
    """Validate a whole vector of times, returning it as a tuple."""
    return tuple(
        check_time(v, name=f"{name}[{i}]") for i, v in enumerate(values)
    )


def is_finite(value: Time) -> bool:
    """Return True for finite times (actual spikes), False for ``∞``."""
    return not isinstance(value, Infinity)


def finite_values(values: Iterable[Time]) -> list[int]:
    """Return only the finite members of *values*, in order."""
    return [v for v in values if not isinstance(v, Infinity)]


def t_min(values: Iterable[Time]) -> Time:
    """Minimum over ``N0∞``; the empty minimum is ``∞`` (the top element)."""
    best: Time = INF
    for v in values:
        if v < best:
            best = v
    return best


def t_max(values: Iterable[Time]) -> Time:
    """Maximum over ``N0∞``; the empty maximum is ``0`` (the bottom element)."""
    best: Time = 0
    for v in values:
        if v > best:
            best = v
    return best


def shift(values: TimeVector, amount: int) -> tuple[Time, ...]:
    """Shift every element of *values* by *amount* time units.

    ``∞`` is absorbing (``∞ + c = ∞``).  A negative *amount* is allowed as
    long as no finite element would become negative — this is exactly the
    operation needed to normalize a vector.
    """
    out: list[Time] = []
    for v in values:
        if isinstance(v, Infinity):
            out.append(INF)
        else:
            moved = v + amount
            if moved < 0:
                raise ValueError(
                    f"shift by {amount} takes {v} below zero; not in N0∞"
                )
            out.append(moved)
    return tuple(out)


def normalize(values: TimeVector) -> tuple[tuple[Time, ...], Time]:
    """Normalize a vector: subtract ``x_min`` so the earliest spike is at 0.

    Returns ``(normalized_vector, x_min)``.  For an all-``∞`` vector the
    shift is ``∞`` and the vector is returned unchanged — there is no spike
    to anchor the local frame of reference.
    """
    lo = t_min(values)
    if isinstance(lo, Infinity):
        return tuple(values), INF
    return shift(values, -lo), lo


def is_normalized(values: TimeVector) -> bool:
    """True if at least one element is 0 (the paper's normal-form rule 1)."""
    return any(v == 0 for v in values)
