"""Semantics-preserving optimization of space-time networks.

Synthesized networks (Theorem 1's minterm form, SRM0 constructions) carry
redundancy a hardware implementation would not want: identical delayed
copies of the same input, chained increments, degenerate races.  The
passes here shrink them while provably preserving the denotational
semantics — the test suite checks optimized networks against the
originals exhaustively.

Rewrites (applied bottom-up, to a fixpoint, by :func:`optimize`):

* **common subexpression elimination** — nodes with the same kind and
  (order-normalized, for min/max) sources are merged,
* **inc-chain fusion** — ``inc(inc(x, a), b)`` → ``inc(x, a + b)``,
* **algebraic identities** — duplicate sources inside min/max deduplicate
  (idempotence) and single-source min/max collapse to wires; ``lt(x, x)``
  is a *never* wire (identically ∞), and min/max/lt/inc absorb never
  wires by the lattice identities (``min(x, never) = x``,
  ``max(x, never) = never``, ``lt(never, y) = never``,
  ``lt(x, never) = x``, ``inc(never) = never``),
* **dead-node elimination** — via
  :func:`repro.network.validate.strip_dead_nodes`.

There is no other constant folding: causality forbids constant spike
sources, so ∞ (*never*) is the only constant that can arise structurally.
"""

from __future__ import annotations

from dataclasses import dataclass

from .blocks import Node
from .graph import Network
from .validate import strip_dead_nodes


@dataclass(frozen=True)
class OptimizationReport:
    """Size accounting for one optimization run."""

    before_blocks: int
    after_blocks: int
    passes: int

    @property
    def removed(self) -> int:
        return self.before_blocks - self.after_blocks

    @property
    def reduction(self) -> float:
        if not self.before_blocks:
            return 0.0
        return self.removed / self.before_blocks

    def __str__(self) -> str:
        return (
            f"{self.before_blocks} -> {self.after_blocks} blocks "
            f"({self.reduction:.0%} removed in {self.passes} pass(es))"
        )


#: Sentinel for a wire that provably never spikes.
_NEVER = -1


def _rewrite_once(network: Network) -> Network:
    """One bottom-up rewriting sweep; returns an equivalent network."""
    new_nodes: list[Node] = []
    seen: dict[tuple, int] = {}  # structural key (over new ids) -> new id
    result: dict[int, int] = {}  # old id -> new id, or _NEVER

    def emit(kind: str, sources: tuple[int, ...] = (), *, amount: int = 1, name=None, tags=()) -> int:
        node = Node(
            len(new_nodes), kind, sources=sources, amount=amount, name=name, tags=tags
        )
        new_nodes.append(node)
        return node.id

    def get_or_emit(key: tuple, kind: str, sources: tuple[int, ...], *, amount: int = 1, tags=()) -> int:
        if key not in seen:
            seen[key] = emit(kind, sources, amount=amount, tags=tags)
        return seen[key]

    for node in network.nodes:
        if node.is_terminal:
            result[node.id] = emit(node.kind, name=node.name)
            continue
        sources = tuple(result[s] for s in node.sources)

        if node.kind == "inc":
            src = sources[0]
            if src == _NEVER:
                result[node.id] = _NEVER
                continue
            amount = node.amount
            if new_nodes[src].kind == "inc":
                amount += new_nodes[src].amount
                src = new_nodes[src].sources[0]
            if amount == 0:
                result[node.id] = src
            else:
                result[node.id] = get_or_emit(
                    ("inc", src, amount), "inc", (src,), amount=amount, tags=node.tags
                )
            continue

        if node.kind in ("min", "max"):
            if node.kind == "max" and _NEVER in sources:
                result[node.id] = _NEVER
                continue
            if node.kind == "max" and not sources:
                # The empty max is the constant 0, not ∞ — keep the node
                # (folding it to _NEVER would flip its value).
                result[node.id] = get_or_emit(("max", ()), "max", (), tags=node.tags)
                continue
            kept = sorted({s for s in sources if s != _NEVER})
            if not kept:
                result[node.id] = _NEVER
            elif len(kept) == 1:
                result[node.id] = kept[0]
            else:
                result[node.id] = get_or_emit(
                    (node.kind, tuple(kept)), node.kind, tuple(kept), tags=node.tags
                )
            continue

        # lt
        a, b = sources
        if a == _NEVER or a == b:
            result[node.id] = _NEVER
        elif b == _NEVER:
            result[node.id] = a
        else:
            result[node.id] = get_or_emit(("lt", a, b), "lt", (a, b), tags=node.tags)

    never_wire: int | None = None
    outputs: dict[str, int] = {}
    for name, old in network.outputs.items():
        new = result[old]
        if new == _NEVER:
            if never_wire is None:
                # lt(x, x) over any existing wire is identically ∞; a
                # network always has at least one terminal to anchor on.
                never_wire = emit("lt", (0, 0), tags=("never",))
            new = never_wire
        outputs[name] = new
    return strip_dead_nodes(Network(new_nodes, outputs, name=network.name))


def optimize(network: Network, *, max_passes: int = 10) -> tuple[Network, OptimizationReport]:
    """Rewrite to a fixpoint; returns ``(optimized_network, report)``.

    The optimized network has the same inputs, parameters, outputs, and
    denotational semantics as the original; only its internal structure
    shrinks.
    """
    before = network.size
    current = strip_dead_nodes(network)
    passes = 0
    while passes < max_passes:
        passes += 1
        rewritten = _rewrite_once(current)
        improved = rewritten.size < current.size
        current = rewritten
        if not improved:
            break
    return current, OptimizationReport(
        before_blocks=before, after_blocks=current.size, passes=passes
    )
