"""Semantics-preserving optimization of space-time networks.

Synthesized networks (Theorem 1's minterm form, SRM0 constructions) carry
redundancy a hardware implementation would not want: identical delayed
copies of the same input, chained increments, degenerate races.  The
rewrites that shrink them now live in the IR pass pipeline
(:mod:`repro.ir.passes`) — canonicalization, constant folding,
inc-chain fusion, CSE, and dead-node elimination — where all four
backends share them.  :func:`optimize` is the Network-level entry point:
it lowers to a :class:`~repro.ir.program.Program`, runs the default
pipeline to a fixpoint, and raises the result back to a
:class:`~repro.network.graph.Network`.

The test suite checks optimized networks against the originals
exhaustively; the pipeline additionally records a provenance map from
optimized nodes back to the original node ids (see
:attr:`repro.ir.program.Program.provenance`), which the Network round
trip here discards.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.passes import optimize_program
from .graph import Network


@dataclass(frozen=True)
class OptimizationReport:
    """Size accounting for one optimization run."""

    before_blocks: int
    after_blocks: int
    passes: int

    @property
    def removed(self) -> int:
        return self.before_blocks - self.after_blocks

    @property
    def reduction(self) -> float:
        if not self.before_blocks:
            return 0.0
        return self.removed / self.before_blocks

    def __str__(self) -> str:
        return (
            f"{self.before_blocks} -> {self.after_blocks} blocks "
            f"({self.reduction:.0%} removed in {self.passes} pass(es))"
        )


def optimize(network: Network, *, max_passes: int = 10) -> tuple[Network, OptimizationReport]:
    """Rewrite to a fixpoint; returns ``(optimized_network, report)``.

    The optimized network has the same inputs, parameters, outputs, and
    denotational semantics as the original; only its internal structure
    shrinks.  A thin wrapper over
    :func:`repro.ir.passes.optimize_program` for callers that want to
    stay at the Network level.
    """
    program, report = optimize_program(network, max_iterations=max_passes)
    optimized = program.to_network()
    return optimized, OptimizationReport(
        before_blocks=network.size,
        after_blocks=optimized.size,
        passes=report.iterations,
    )
