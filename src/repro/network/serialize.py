"""JSON (de)serialization of space-time networks.

Trained or synthesized networks are artifacts worth persisting — a
compiled SRM0 bank or a minterm network is the output of a build step.
The format is a plain JSON document:

.. code-block:: json

    {
      "format": "repro.network/1",
      "name": "minterm[3 rows]",
      "nodes": [
        {"kind": "input", "name": "x1"},
        {"kind": "inc", "sources": [0], "amount": 3},
        {"kind": "min", "sources": [0, 1]}
      ],
      "outputs": {"y": 2}
    }

Node ids are implicit (list position), which makes hand-editing and
diffing practical.  Loading re-validates everything through the normal
:class:`~repro.network.blocks.Node` and
:class:`~repro.network.graph.Network` constructors, so a corrupted file
cannot produce a cyclic or ill-formed network.

Documents written by :func:`network_to_dict` also embed the network's
:meth:`~repro.network.graph.Network.fingerprint` — the identity the
serving model registry keys on.  :func:`network_from_dict` recomputes
the fingerprint of the rebuilt network and refuses a document whose
embedded fingerprint disagrees: a round-trip is guaranteed to preserve
the fingerprint bit-for-bit, so a fingerprint travelling with a file is
trustworthy.  Hand-written documents may simply omit the field.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .blocks import Node
from .graph import Network, NetworkError

FORMAT = "repro.network/1"


def network_to_dict(network: Network) -> dict[str, Any]:
    """The JSON-ready representation of *network*."""
    nodes: list[dict[str, Any]] = []
    for node in network.nodes:
        entry: dict[str, Any] = {"kind": node.kind}
        if node.is_terminal:
            entry["name"] = node.name
        else:
            entry["sources"] = list(node.sources)
        if node.kind == "inc":
            entry["amount"] = node.amount
        if node.tags:
            entry["tags"] = list(node.tags)
        nodes.append(entry)
    return {
        "format": FORMAT,
        "name": network.name,
        "fingerprint": network.fingerprint(),
        "nodes": nodes,
        "outputs": dict(network.outputs),
    }


def network_from_dict(data: dict[str, Any]) -> Network:
    """Rebuild a network, re-validating structure along the way."""
    if data.get("format") != FORMAT:
        raise NetworkError(
            f"unsupported format {data.get('format')!r}; expected {FORMAT!r}"
        )
    raw_nodes = data.get("nodes")
    if not isinstance(raw_nodes, list):
        raise NetworkError("'nodes' must be a list")
    nodes: list[Node] = []
    for i, entry in enumerate(raw_nodes):
        if not isinstance(entry, dict) or "kind" not in entry:
            raise NetworkError(f"node #{i} is malformed")
        try:
            nodes.append(
                Node(
                    i,
                    entry["kind"],
                    sources=tuple(entry.get("sources", ())),
                    amount=entry.get("amount", 1),
                    name=entry.get("name"),
                    tags=tuple(entry.get("tags", ())),
                )
            )
        except (TypeError, ValueError) as exc:
            raise NetworkError(f"node #{i} invalid: {exc}") from exc
    outputs = data.get("outputs")
    if not isinstance(outputs, dict):
        raise NetworkError("'outputs' must be a mapping")
    network = Network(nodes, outputs, name=data.get("name"))
    claimed = data.get("fingerprint")
    if claimed is not None and claimed != network.fingerprint():
        raise NetworkError(
            f"fingerprint mismatch: document claims {str(claimed)[:12]}…, "
            f"rebuilt network is {network.fingerprint()[:12]}… — the "
            "document was modified after it was written"
        )
    return network


def dumps(network: Network, *, indent: int | None = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(network_to_dict(network), indent=indent)


def loads(text: str) -> Network:
    """Deserialize from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise NetworkError(f"invalid JSON: {exc}") from exc
    return network_from_dict(data)


def save(network: Network, path: str | Path) -> None:
    """Write a network to *path* as JSON."""
    Path(path).write_text(dumps(network), encoding="utf-8")


def load(path: str | Path) -> Network:
    """Read a network from a JSON file."""
    return loads(Path(path).read_text(encoding="utf-8"))
