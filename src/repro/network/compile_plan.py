"""Compiled batched evaluation of space-time networks.

The denotational evaluator (:mod:`repro.network.simulator`) walks Python
``Node`` objects and performs :class:`~repro.core.value.Infinity`-object
arithmetic one volley at a time.  The algebra's semantics — ``min``,
``max``, ``lt`` and saturating ``inc`` over ``N0∞`` — map directly onto
saturating integer array operations, so a network can instead be
*compiled once* into a flat instruction stream and then applied to a
whole **batch** of input volleys in a handful of NumPy calls.

Encoding
--------
Times are ``int64``; ``∞`` is the sentinel ``iinfo(int64).max``
(:data:`INF_I64`).  Because the sentinel is the largest representable
value, comparisons against it are automatically correct (``∞`` loses
every ``min``, wins every ``max``, never precedes anything) and ``inc``
becomes the saturating add ``min(x, INF_I64 - c) + c``, which both keeps
``∞`` absorbing and can never overflow.  Finite input times must be
strictly below the sentinel; times that would *reach* it through
increments saturate to ``∞`` (the scalar evaluator's arbitrary-precision
ints diverge from this only beyond ``2^63 - 1``, far outside any
physically meaningful spike time — the scalar wrappers fall back to the
interpreted evaluator for such inputs).

Compilation
-----------
:func:`compile_plan` schedules the (already topologically ordered) node
list by *level* — the longest structural distance from a terminal — and
fuses every same-kind group within a level into a single vectorized
instruction: one gather + reduction for a whole layer of ``min``
comparators, one saturating add for a whole layer of delays, one
``where`` for a whole layer of ``lt`` races.  Nodes at equal level can
never depend on each other, so any order within a level is valid.
Variadic ``min``/``max`` groups are padded to a rectangular source
matrix by repeating each node's own first source (both ops are
idempotent, so padding does not change the result).

Plans are memoized: first by network identity (a weak map, so plans die
with their networks), then by :meth:`Network.fingerprint` (a bounded LRU,
so structurally identical networks — e.g. a serialization round-trip —
share one plan).  A ``Network`` is immutable, so a cached plan can never
go stale; the fingerprint key invalidates exactly when the structure
(kinds, sources, amounts, terminal names, outputs) differs.

Entry points
------------
* :func:`evaluate_batch` — ``(B, n_inputs)`` volley matrix in,
  ``(B, n_outputs)`` spike-time matrix out, one compiled call.
* :func:`encode_volleys` / :func:`decode_matrix` — convert between
  ``Time`` tuples (with :data:`~repro.core.value.INF`) and the sentinel
  ``int64`` encoding.
* :func:`compile_plan` — the cached plan itself, for callers that want
  every node's value (:meth:`CompiledPlan.run`) or instruction counts.

The scalar :func:`repro.network.simulator.evaluate` /
:func:`~repro.network.simulator.evaluate_all` are thin B=1 wrappers over
this engine.
"""

from __future__ import annotations

import warnings
import weakref
from time import perf_counter as _perf_counter
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..core.value import INF, Infinity, Time, check_time
from .graph import Network, NetworkError

#: Sentinel encoding of ``∞`` in the int64 engine: the largest int64.
INF_I64: int = int(np.iinfo(np.int64).max)

#: Largest finite time the batched engine accepts on an input line.
MAX_FINITE: int = INF_I64 - 1

# Imported *after* the sentinel constants: ``repro.obs.trace`` imports
# MAX_FINITE back from this module, so the constants must already be
# bound when the observability layer initializes mid-import.
from ..obs import metrics as _obs_metrics  # noqa: E402
from ..obs import profile as _obs_profile  # noqa: E402
from ..obs import trace as _obs_trace  # noqa: E402
from ..ir.program import (  # noqa: E402
    CONST_IDENTITY,
    Program,
    ProgramLike,
    classify,
    ensure_program,
)

VolleyLike = Union[np.ndarray, Sequence[Sequence[Time]]]


# ---------------------------------------------------------------------------
# Encoding helpers
# ---------------------------------------------------------------------------

def encode_time(value: Time) -> int:
    """Encode one ``Time`` as a sentinel int64 value."""
    if isinstance(value, Infinity):
        return INF_I64
    value = check_time(value)
    if value > MAX_FINITE:
        raise NetworkError(
            f"finite time {value} exceeds the batched engine's limit "
            f"({MAX_FINITE}); use the interpreted evaluator"
        )
    return value


def decode_time(value: int) -> Time:
    """Decode one sentinel int64 value back into ``Time``."""
    return INF if value == INF_I64 else int(value)


def encode_volleys(
    volleys: VolleyLike, *, arity: Optional[int] = None
) -> np.ndarray:
    """Encode a batch of volleys as a ``(B, arity)`` int64 matrix.

    Accepts either a sequence of ``Time`` tuples (``INF`` marks silence)
    or an integer ndarray already using the :data:`INF_I64` sentinel.
    Validates membership in ``N0∞``: entries must be non-negative and
    finite entries must not exceed :data:`MAX_FINITE`.
    """
    if isinstance(volleys, np.ndarray):
        if not np.issubdtype(volleys.dtype, np.integer):
            raise NetworkError(
                f"volley matrix must have an integer dtype, got {volleys.dtype}"
            )
        matrix = volleys.astype(np.int64, copy=False)
        if matrix.ndim != 2:
            raise NetworkError(
                f"volley matrix must be 2-D (batch, lines), got {matrix.ndim}-D"
            )
        if matrix.size and int(matrix.min()) < 0:
            raise NetworkError("volley matrix contains negative times")
    else:
        rows = [tuple(encode_time(v) for v in volley) for volley in volleys]
        widths = {len(r) for r in rows}
        if len(widths) > 1:
            raise NetworkError(f"ragged volley batch: widths {sorted(widths)}")
        width = widths.pop() if widths else (arity or 0)
        matrix = np.asarray(rows, dtype=np.int64).reshape(len(rows), width)
    if arity is not None and matrix.shape[1] != arity:
        raise NetworkError(
            f"expected volleys of {arity} lines, got {matrix.shape[1]}"
        )
    return matrix


def decode_matrix(matrix: np.ndarray) -> list[tuple[Time, ...]]:
    """Decode an encoded ``(B, n)`` matrix into ``Time`` tuples."""
    return [tuple(decode_time(int(v)) for v in row) for row in matrix]


def _encode_params(
    network: "ProgramLike", params: Optional[Mapping[str, Time]]
) -> np.ndarray:
    """Validate and encode a parameter binding in declaration order."""
    params = params or {}
    missing = set(network.param_ids) - set(params)
    if missing:
        raise NetworkError(f"unbound params: {sorted(missing)}")
    encoded = np.empty(len(network.param_ids), dtype=np.int64)
    for slot, name in enumerate(network.param_ids):
        value = check_time(params[name], name=name)
        if isinstance(value, Infinity):
            encoded[slot] = INF_I64
        elif value == 0:
            encoded[slot] = 0
        else:
            raise NetworkError(f"param {name!r} must be 0 or INF, got {value}")
    return encoded


# ---------------------------------------------------------------------------
# Instruction groups
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _ConstGroup:
    """Zero-source ``min``/``max`` nodes: the lattice identity elements."""

    ids: np.ndarray
    value: int  # INF_I64 for empty min, 0 for empty max


@dataclass(frozen=True)
class _IncGroup:
    """A level's worth of delays: one saturating add."""

    ids: np.ndarray
    srcs: np.ndarray
    amounts: np.ndarray
    caps: np.ndarray  # INF_I64 - amounts, precomputed


@dataclass(frozen=True)
class _ReduceGroup:
    """A level's worth of same-kind ``min``/``max``: one reduction.

    ``srcs`` is rectangular ``(n_nodes, max_arity)``; shorter source
    tuples are padded with the node's own first source (idempotence).
    """

    ids: np.ndarray
    srcs: np.ndarray
    is_min: bool


@dataclass(frozen=True)
class _LtGroup:
    """A level's worth of ``lt`` races: one compare + where."""

    ids: np.ndarray
    a: np.ndarray
    b: np.ndarray


_Group = Union[_ConstGroup, _IncGroup, _ReduceGroup, _LtGroup]

#: Batch-dimension block for :meth:`CompiledPlan.run`.  512 rows of a
#: hundred-node net is a few-hundred-KiB working set — small enough to
#: stay cache-resident across the whole instruction stream, large
#: enough that per-group NumPy dispatch stays amortized.  Wide batches
#: otherwise stream the full (B, n_nodes) slab through memory once per
#: group, which is the B=64→B=1024 throughput cliff BENCH_batched_eval
#: used to show.
_RUN_BLOCK = 512


class CompiledPlan:
    """An executable, batch-oriented compilation of one program structure.

    Accepts a :class:`~repro.ir.program.Program` or a
    :class:`~repro.network.graph.Network` (lowered on entry); the IR's
    level schedule is what the instruction stream fuses over.
    """

    def __init__(self, source: "ProgramLike"):
        program = ensure_program(source)
        self.program = program
        self.n_nodes = len(program.nodes)
        # Kept for spike tracing (cause derivation) and describe();
        # nodes are immutable and shared with the source program.
        self.nodes = program.nodes
        self.fingerprint = program.fingerprint()
        self.input_ids = np.fromiter(
            program.input_ids.values(), dtype=np.int64, count=len(program.input_ids)
        )
        self.param_ids = np.fromiter(
            program.param_ids.values(), dtype=np.int64, count=len(program.param_ids)
        )
        self.output_names = list(program.outputs)
        self.output_ids = np.fromiter(
            program.outputs.values(), dtype=np.int64, count=len(program.outputs)
        )
        self.groups: list[_Group] = _build_groups(program)

    # -- introspection -------------------------------------------------------
    @property
    def n_instructions(self) -> int:
        """Fused instruction count (plus one input scatter + one gather)."""
        return len(self.groups)

    def describe(self) -> str:
        """One line per fused instruction, for reports and debugging."""
        lines = [
            f"plan: {self.n_nodes} nodes -> {self.n_instructions} instructions"
        ]
        for group in self.groups:
            if isinstance(group, _ConstGroup):
                kind = "const(∞)" if group.value == INF_I64 else "const(0)"
                lines.append(f"  {kind:<9} x{len(group.ids)}")
            elif isinstance(group, _IncGroup):
                lines.append(f"  inc       x{len(group.ids)}")
            elif isinstance(group, _ReduceGroup):
                op = "min" if group.is_min else "max"
                lines.append(
                    f"  {op:<9} x{len(group.ids)} (arity<={group.srcs.shape[1]})"
                )
            else:
                lines.append(f"  lt        x{len(group.ids)}")
        return "\n".join(lines)

    # -- execution -------------------------------------------------------------
    def run(
        self,
        matrix: np.ndarray,
        param_vector: Optional[np.ndarray] = None,
        *,
        sink=None,
        trace_row: int = 0,
    ) -> np.ndarray:
        """Evaluate every node on an encoded batch.

        *matrix* is ``(B, n_inputs)`` int64 with the sentinel encoding,
        columns in input declaration order; *param_vector* is the encoded
        parameter binding (declaration order).  Returns the full
        ``(B, n_nodes)`` value matrix.

        *sink* is an optional :class:`repro.obs.trace.TraceSink`; when
        enabled, the canonical spike trace of batch row *trace_row* is
        emitted level by level as the instruction stream executes.  The
        default (``None``) costs one identity check — the hot path stays
        branch-free inside the level loop except for two cached bools.
        """
        batch = matrix.shape[0]
        values = np.empty((batch, self.n_nodes), dtype=np.int64)
        if self.input_ids.size:
            values[:, self.input_ids] = matrix
        if self.param_ids.size:
            if param_vector is None:
                raise NetworkError(
                    f"network has {self.param_ids.size} params; none bound"
                )
            values[:, self.param_ids] = param_vector
        tracing = sink is not None and sink.enabled
        profiling = _obs_profile.profiling_enabled()
        if tracing:
            # A view: the emission helper below always sees the freshest
            # level's results without re-slicing.
            row = values[trace_row]
            for node in self.nodes:
                if node.is_terminal and row[node.id] <= MAX_FINITE:
                    sink.emit(
                        int(row[node.id]), node.id, _obs_trace.cause_of(node, row)
                    )
        # Block the batch dimension so each chunk's working set — the
        # (chunk, n_nodes) slab plus every per-group gather — stays
        # cache-resident across the full instruction stream instead of
        # streaming the whole batch through memory once per group.
        # Tracing is per-level over one designated row, so it keeps the
        # single-chunk schedule.
        step = max(batch, 1) if tracing else _RUN_BLOCK
        for chunk_start in range(0, batch, step):
            chunk = values[chunk_start:chunk_start + step]
            for group in self.groups:
                if profiling:
                    start = _perf_counter()
                if isinstance(group, _IncGroup):
                    gathered = chunk[:, group.srcs]
                    np.minimum(gathered, group.caps, out=gathered)
                    gathered += group.amounts
                    chunk[:, group.ids] = gathered
                elif isinstance(group, _ReduceGroup):
                    gathered = chunk[:, group.srcs]
                    reduced = (
                        gathered.min(axis=2)
                        if group.is_min
                        else gathered.max(axis=2)
                    )
                    chunk[:, group.ids] = reduced
                elif isinstance(group, _LtGroup):
                    a = chunk[:, group.a]
                    b = chunk[:, group.b]
                    chunk[:, group.ids] = np.where(a < b, a, INF_I64)
                else:  # _ConstGroup
                    chunk[:, group.ids] = group.value
                if profiling:
                    _obs_metrics.METRICS.add_time(
                        f"plan.group.{_group_kind(group)}",
                        _perf_counter() - start,
                    )
                if tracing:
                    for node_id in group.ids.tolist():
                        value = int(row[node_id])
                        if value <= MAX_FINITE:
                            sink.emit(
                                value,
                                node_id,
                                _obs_trace.cause_of(self.nodes[node_id], row),
                            )
        _obs_metrics.METRICS.inc("plan.runs")
        return values

    def outputs(
        self, matrix: np.ndarray, param_vector: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Like :meth:`run` but gather only the output columns."""
        return self.run(matrix, param_vector)[:, self.output_ids]

    def warm(self) -> "CompiledPlan":
        """Run one synthetic volley so first real traffic pays no lazy cost.

        Compilation builds the instruction stream eagerly, but the first
        :meth:`run` still triggers one-time work (NumPy ufunc dispatch,
        first-touch allocation).  Serving workers call this at startup so
        request latency never includes it.  The synthetic volley is all
        zeros with every parameter bound to ``∞`` — always valid, and the
        result is discarded.  Returns ``self`` for chaining.
        """
        matrix = np.zeros((1, self.input_ids.size), dtype=np.int64)
        param_vector = (
            np.full(self.param_ids.size, INF_I64, dtype=np.int64)
            if self.param_ids.size
            else None
        )
        self.run(matrix, param_vector)
        _obs_metrics.METRICS.inc("plan.warmups")
        return self


def _group_kind(group: _Group) -> str:
    """Timer label for one fused instruction group."""
    if isinstance(group, _IncGroup):
        return "inc"
    if isinstance(group, _ReduceGroup):
        return "min" if group.is_min else "max"
    if isinstance(group, _LtGroup):
        return "lt"
    return "const"


def _build_groups(program: Program) -> list[_Group]:
    """Fuse the IR level schedule into vector instructions.

    The levels come from the program (computed once at lowering); the
    zero-source min/max constants are recognized through
    :func:`repro.ir.classify` — the IR owns that identity rule, this
    backend only encodes the identity value it is told.
    """
    levels = program.levels

    buckets: dict[tuple[int, str], list] = {}
    for node in program.nodes:
        if node.is_terminal:
            continue
        buckets.setdefault((levels[node.id], classify(node)), []).append(node)

    groups: list[_Group] = []
    for (_, kind), nodes in sorted(buckets.items(), key=lambda item: item[0][0]):
        ids = np.array([n.id for n in nodes], dtype=np.int64)
        if kind == "inc":
            amounts = np.array([n.amount for n in nodes], dtype=np.int64)
            groups.append(
                _IncGroup(
                    ids=ids,
                    srcs=np.array([n.sources[0] for n in nodes], dtype=np.int64),
                    amounts=amounts,
                    caps=INF_I64 - amounts,
                )
            )
        elif kind in ("min", "max"):
            width = max(len(n.sources) for n in nodes)
            srcs = np.array(
                [
                    list(n.sources) + [n.sources[0]] * (width - len(n.sources))
                    for n in nodes
                ],
                dtype=np.int64,
            )
            groups.append(_ReduceGroup(ids=ids, srcs=srcs, is_min=kind == "min"))
        elif kind == "lt":
            groups.append(
                _LtGroup(
                    ids=ids,
                    a=np.array([n.sources[0] for n in nodes], dtype=np.int64),
                    b=np.array([n.sources[1] for n in nodes], dtype=np.int64),
                )
            )
        else:  # const-inf / const-zero: the lattice identity elements
            identity = CONST_IDENTITY[kind]
            groups.append(
                _ConstGroup(
                    ids=ids,
                    value=INF_I64 if isinstance(identity, Infinity) else int(identity),
                )
            )
    return groups


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------

# The structural store lives in the unified runtime tier (PR 9) under
# the ``int64`` namespace — one LRU budget and byte accounting across
# engines, reported by ``repro.runtime.cache_info()``.  This module
# keeps only the weak identity memo, which bounds itself by object
# lifetime, and deprecation shims over its historical cache API.
from ..runtime.cache import PLAN_CACHE as _PLAN_CACHE  # noqa: E402

_PLAN_NAMESPACE = "int64"
_PLAN_CACHE.register_namespace(
    _PLAN_NAMESPACE, metric_prefix="plan_cache", limit=128
)

#: Identity fast path: plans die with their networks/programs.
_PLAN_MEMO: "weakref.WeakKeyDictionary[ProgramLike, CompiledPlan]" = (
    weakref.WeakKeyDictionary()
)


def set_plan_cache_limit(limit: int) -> int:
    """Resize the structural LRU; returns the previous limit.

    .. deprecated:: PR 9
       Forwards to ``repro.runtime.PLAN_CACHE.set_namespace_limit``.

    Shrinking below the current occupancy evicts the least recently
    used plans immediately (counted in ``plan_cache.evict``).  The
    identity memo is unaffected — it is weak and bounds itself by
    object lifetime.
    """
    warnings.warn(
        "repro.network.set_plan_cache_limit() is deprecated; use "
        "repro.runtime.PLAN_CACHE.set_namespace_limit('int64', limit)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _PLAN_CACHE.set_namespace_limit(_PLAN_NAMESPACE, limit)


def compile_plan(source: "ProgramLike") -> CompiledPlan:
    """The memoized executable plan for *source* (Network or Program).

    Cached first by object identity (weakly — no leak), then by the IR
    fingerprint in the runtime plan-cache tier, which
    :meth:`Network.fingerprint` and :meth:`Program.fingerprint` compute
    identically — so a network, its unoptimized lowering, and any
    structural twin (e.g. a serialization round-trip) all share one
    plan, while an optimized program keys its own entry.  Immutability
    of both types means a hit is always valid.
    """
    plan = _PLAN_MEMO.get(source)
    if plan is not None:
        _obs_metrics.METRICS.inc("plan_cache.hit.identity")
        return plan
    print_key = ensure_program(source).fingerprint()
    plan = _PLAN_CACHE.get(_PLAN_NAMESPACE, print_key)
    if plan is None:
        with _obs_metrics.METRICS.timeit("plan.compile"):
            plan = CompiledPlan(source)
        _PLAN_CACHE.put(_PLAN_NAMESPACE, print_key, plan)
    _PLAN_MEMO[source] = plan
    return plan


def _plan_cache_record() -> dict:
    """The historical ``plan_cache_info()`` payload, warning-free.

    Kept as the internal feeder for the deprecation shim and for
    endpoints that still publish the legacy ``plan_cache`` key
    (``serve.server`` health/metrics, ``repro stats --json``).
    """
    from ..native.plan import _native_cache_record

    ns = _PLAN_CACHE.namespace_info(_PLAN_NAMESPACE)
    return {
        "identity": len(_PLAN_MEMO),
        "structural": ns["entries"],
        "limit": ns["limit"],
        "hits_identity": _obs_metrics.METRICS.counter("plan_cache.hit.identity"),
        "hits_structural": ns["hits_structural"],
        "misses": ns["misses"],
        "evictions": ns["evictions"],
        "native": _native_cache_record(),
    }


def plan_cache_info() -> dict:
    """Cache occupancy and lifetime hit/miss/evict counts, for diagnostics.

    .. deprecated:: PR 9
       Read ``repro.runtime.cache_info()`` instead — the unified surface
       covering the plan tier, the result cache, and engine probes.

    Occupancy (``identity``, ``structural``) and ``limit`` reflect the
    current cache state; the ``hits_*``/``misses``/``evictions`` counts
    come from the runtime metrics registry and cover the life of the
    process (reset with :func:`repro.obs.reset_metrics`).  The nested
    ``native`` key reports the native backend's plan-cache namespace
    with the same shape.
    """
    warnings.warn(
        "repro.network.plan_cache_info() is deprecated; use "
        "repro.runtime.cache_info()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _plan_cache_record()


def clear_plan_cache() -> None:
    """Drop every cached int64 plan (tests and memory-sensitive callers).

    .. deprecated:: PR 9
       Use ``repro.runtime.clear_caches()``.
    """
    warnings.warn(
        "repro.network.clear_plan_cache() is deprecated; use "
        "repro.runtime.clear_caches()",
        DeprecationWarning,
        stacklevel=2,
    )
    _PLAN_MEMO.clear()
    _PLAN_CACHE.clear(_PLAN_NAMESPACE)


# ---------------------------------------------------------------------------
# Batched evaluation API
# ---------------------------------------------------------------------------

def evaluate_batch(
    network: "ProgramLike",
    inputs: VolleyLike,
    *,
    params: Optional[Mapping[str, Time]] = None,
    sink=None,
) -> np.ndarray:
    """Evaluate a batch of volleys in one compiled call.

    *inputs* is a ``(B, n_inputs)`` matrix — either ``Time`` rows or an
    encoded int64 ndarray — with columns in input declaration order
    (``network.input_names``).  Returns an encoded ``(B, n_outputs)``
    int64 matrix, columns in ``network.output_names`` order, with
    :data:`INF_I64` marking "no spike".  Decode with
    :func:`decode_matrix` when ``Time`` values are wanted.

    *sink* (a :class:`repro.obs.trace.TraceSink`) records the canonical
    spike trace of batch row 0 when enabled.  Under
    :func:`repro.obs.profiled`, the call's wall-clock is attributed to
    the ``phase.evaluate_batch.{plan,encode,run}`` timers; disabled, the
    overhead is two flag checks plus two counter increments.
    """
    metrics = _obs_metrics.METRICS
    if _obs_profile.profiling_enabled():
        with _obs_profile.phase("evaluate_batch.plan"):
            plan = compile_plan(network)
        with _obs_profile.phase("evaluate_batch.encode"):
            matrix = encode_volleys(inputs, arity=len(network.input_ids))
            param_vector = _encode_params(network, params)
        with _obs_profile.phase("evaluate_batch.run"):
            out = plan.run(matrix, param_vector, sink=sink)[:, plan.output_ids]
    else:
        plan = compile_plan(network)
        matrix = encode_volleys(inputs, arity=len(network.input_ids))
        param_vector = _encode_params(network, params)
        out = plan.run(matrix, param_vector, sink=sink)[:, plan.output_ids]
    metrics.inc("evaluate_batch.calls")
    metrics.inc("evaluate_batch.volleys", matrix.shape[0])
    return out


def evaluate_batch_all(
    network: "ProgramLike",
    inputs: VolleyLike,
    *,
    params: Optional[Mapping[str, Time]] = None,
) -> np.ndarray:
    """Like :func:`evaluate_batch` but return every node's value column."""
    plan = compile_plan(network)
    matrix = encode_volleys(inputs, arity=len(network.input_ids))
    param_vector = _encode_params(network, params)
    return plan.run(matrix, param_vector)


def evaluate_batch_dicts(
    network: "ProgramLike",
    inputs: VolleyLike,
    *,
    params: Optional[Mapping[str, Time]] = None,
) -> list[dict[str, Time]]:
    """Batched evaluation decoded to per-volley ``{output: Time}`` dicts.

    The convenience shape used by the equivalence harness; prefer the raw
    matrix from :func:`evaluate_batch` in hot loops.
    """
    matrix = evaluate_batch(network, inputs, params=params)
    names = list(network.outputs)
    return [
        {name: decode_time(int(value)) for name, value in zip(names, row)}
        for row in matrix
    ]
