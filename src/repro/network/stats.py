"""Size, depth, and activity statistics for space-time networks.

The paper's efficiency arguments (§I, §VI) are about *activity*: a direct
temporal implementation produces at most one event per wire per
computation, and sparse codings drive most wires to zero events.  These
helpers quantify structure (node counts, structural depth, fanout) and
activity (spikes per run, wire utilization) so benchmarks can report them.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Optional

from ..core.value import Time
from .events import EventSimulator, SimulationResult
from .graph import Network


@dataclass(frozen=True)
class StructureStats:
    """Static structure summary of one network."""

    name: str
    n_inputs: int
    n_params: int
    n_outputs: int
    n_blocks: int
    counts_by_kind: dict[str, int]
    depth: int
    max_fanout: int
    total_delay_units: int

    def __str__(self) -> str:
        kinds = ", ".join(f"{k}:{v}" for k, v in sorted(self.counts_by_kind.items()))
        return (
            f"{self.name}: {self.n_blocks} blocks ({kinds}), depth "
            f"{self.depth}, max fanout {self.max_fanout}, "
            f"{self.total_delay_units} delay units"
        )


def structure(network: Network) -> StructureStats:
    """Compute static structural statistics for *network*."""
    fanout = [len(c) for c in network.consumers()]
    return StructureStats(
        name=network.name,
        n_inputs=len(network.input_ids),
        n_params=len(network.param_ids),
        n_outputs=len(network.outputs),
        n_blocks=network.size,
        counts_by_kind=network.counts_by_kind(),
        depth=network.depth(),
        max_fanout=max(fanout, default=0),
        total_delay_units=sum(
            n.amount for n in network.nodes if n.kind == "inc"
        ),
    )


@dataclass(frozen=True)
class ActivityStats:
    """Spike activity over one or more runs of a network."""

    runs: int
    total_spikes: int
    total_wires: int
    silent_wire_fraction: float
    mean_makespan: float

    @property
    def spikes_per_run(self) -> float:
        return self.total_spikes / self.runs if self.runs else 0.0

    def __str__(self) -> str:
        return (
            f"{self.runs} run(s): {self.spikes_per_run:.1f} spikes/run over "
            f"{self.total_wires} wires "
            f"({self.silent_wire_fraction:.1%} silent), mean makespan "
            f"{self.mean_makespan:.1f}"
        )


def activity(
    network: Network,
    input_sets: Iterable[Mapping[str, Time]],
    *,
    params: Optional[Mapping[str, Time]] = None,
) -> ActivityStats:
    """Run the event simulator over *input_sets* and summarize activity.

    "Wires" are node outputs; a wire is silent in a run when its node never
    fires.  The single-spike-per-wire property of s-t computation means
    ``total_spikes <= runs * total_wires`` always holds.
    """
    sim = EventSimulator(network)
    runs = 0
    spikes = 0
    silent = 0
    makespans = 0
    n_wires = len(network.nodes)
    for inputs in input_sets:
        result: SimulationResult = sim.run(inputs, params=params)
        runs += 1
        spikes += result.total_spikes
        silent += n_wires - result.total_spikes
        # A silent run has no makespan (None); it contributes 0 latency.
        makespans += result.makespan or 0
    return ActivityStats(
        runs=runs,
        total_spikes=spikes,
        total_wires=n_wires,
        silent_wire_fraction=(silent / (runs * n_wires)) if runs else 0.0,
        mean_makespan=(makespans / runs) if runs else 0.0,
    )
