"""Functional (denotational) evaluation of space-time networks.

Evaluates every node once, in topological order, using the pure algebra
semantics from :mod:`repro.core.algebra`.  This is the reference
implementation of network meaning; the operational event-driven simulator
(:mod:`repro.network.events`) and the gate-level GRL simulator
(:mod:`repro.racelogic.digital`) are checked against it.

Two execution paths share these semantics:

* :func:`evaluate_all_interpreted` — the original per-node Python loop,
  kept as the executable specification (it is what the batched engine is
  property-checked against) and as the fallback for inputs beyond the
  int64 range;
* the compiled int64 engine (:mod:`repro.network.compile_plan`), which
  :func:`evaluate_all` / :func:`evaluate` wrap with a batch of one.  The
  compiled plan is memoized per network, so repeated scalar calls on the
  same network stay cheap, and batch callers should use
  :func:`~repro.network.compile_plan.evaluate_batch` directly.

Empty ``min``/``max`` nodes evaluate to the lattice identity elements:
a ``min`` with no sources is ``∞`` (no first arrival ever happens) and a
``max`` with no sources is ``0`` (every one of its zero arrivals has
happened at time 0).  Both paths implement — and the regression tests
assert — exactly this.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Optional

from ..core.value import INF, Infinity, Time, check_time
from ..ir.program import CONST_IDENTITY, ProgramLike, classify, ensure_program
from .graph import Network, NetworkError


def evaluate_all_interpreted(
    network: ProgramLike,
    inputs: Mapping[str, Time],
    *,
    params: Optional[Mapping[str, Time]] = None,
    sink=None,
) -> list[Time]:
    """The pure-Python reference loop: every node's spike time, by id.

    Semantically identical to :func:`evaluate_all`; exists as the
    executable specification the compiled engine is checked against, and
    handles arbitrary-precision times the int64 engine cannot.

    Accepts a :class:`~repro.network.graph.Network` or an already-lowered
    :class:`~repro.ir.program.Program` and walks the IR level schedule;
    the zero-source min/max constants evaluate to the lattice identities
    the IR declares (:data:`repro.ir.CONST_IDENTITY`) — this backend no
    longer derives that rule itself.

    *sink* is an optional :class:`repro.obs.trace.TraceSink`; when
    enabled, the canonical spike trace of this volley is emitted after
    the walk (one event per node that fires).
    """
    program = ensure_program(network)
    params = params or {}
    missing_in = set(program.input_ids) - set(inputs)
    if missing_in:
        raise NetworkError(f"unbound inputs: {sorted(missing_in)}")
    missing_p = set(program.param_ids) - set(params)
    if missing_p:
        raise NetworkError(f"unbound params: {sorted(missing_p)}")

    nodes = program.nodes
    values: list[Time] = [INF] * len(nodes)
    for level_ids in program.schedule:
        for node_id in level_ids:
            node = nodes[node_id]
            kind = classify(node)
            if kind == "input":
                values[node.id] = check_time(inputs[node.name], name=node.name)
            elif kind == "param":
                value = check_time(params[node.name], name=node.name)
                if value != 0 and not isinstance(value, Infinity):
                    raise NetworkError(
                        f"param {node.name!r} must be 0 or INF, got {value}"
                    )
                values[node.id] = value
            elif kind == "inc":
                x = values[node.sources[0]]
                values[node.id] = (
                    INF if isinstance(x, Infinity) else x + node.amount
                )
            elif kind == "min":
                best: Time = INF
                for s in node.sources:
                    v = values[s]
                    if v < best:
                        best = v
                values[node.id] = best
            elif kind == "max":
                worst: Time = 0
                for s in node.sources:
                    v = values[s]
                    if v > worst:
                        worst = v
                values[node.id] = worst
            elif kind == "lt":
                a = values[node.sources[0]]
                b = values[node.sources[1]]
                values[node.id] = a if a < b else INF
            else:  # const-inf / const-zero: the IR-declared identities
                values[node.id] = CONST_IDENTITY[kind]
    if sink is not None and sink.enabled:
        from ..obs.trace import emit_events

        emit_events(sink, program, values)
    return values


def evaluate_all(
    network: ProgramLike,
    inputs: Mapping[str, Time],
    *,
    params: Optional[Mapping[str, Time]] = None,
) -> list[Time]:
    """Return the spike time of every node, indexed by node id.

    *inputs* must bind every primary input; *params* every parameter.
    Unbound inputs are an error — a missing spike must be stated
    explicitly as ``INF``, never implied.

    A thin batch-of-one wrapper over the compiled engine
    (:mod:`repro.network.compile_plan`); validation order and error
    messages match the interpreted reference exactly.
    """
    # Deferred import: keeps numpy off cold paths and avoids a cycle.
    from .compile_plan import (
        INF_I64,
        MAX_FINITE,
        _encode_params,
        compile_plan,
    )

    params = params or {}
    missing_in = set(network.input_ids) - set(inputs)
    if missing_in:
        raise NetworkError(f"unbound inputs: {sorted(missing_in)}")
    missing_p = set(network.param_ids) - set(params)
    if missing_p:
        raise NetworkError(f"unbound params: {sorted(missing_p)}")

    # Validate terminals in node order, exactly as the interpreted loop
    # does, so error types/messages/ordering are preserved.
    row = [0] * len(network.input_ids)
    slot = 0
    for node in network.nodes:
        if node.kind == "input":
            value = check_time(inputs[node.name], name=node.name)
            if isinstance(value, Infinity):
                row[slot] = INF_I64
            elif value > MAX_FINITE:
                # Beyond int64: the interpreted loop is exact, use it.
                return evaluate_all_interpreted(network, inputs, params=params)
            else:
                row[slot] = value
            slot += 1
        elif node.kind == "param":
            value = check_time(params[node.name], name=node.name)
            if value != 0 and not isinstance(value, Infinity):
                raise NetworkError(
                    f"param {node.name!r} must be 0 or INF, got {value}"
                )

    import numpy as np

    plan = compile_plan(network)
    matrix = np.array([row], dtype=np.int64).reshape(1, len(row))
    values = plan.run(matrix, _encode_params(network, params))[0]
    return [INF if v == INF_I64 else int(v) for v in values.tolist()]


def evaluate(
    network: ProgramLike,
    inputs: Mapping[str, Time],
    *,
    params: Optional[Mapping[str, Time]] = None,
) -> dict[str, Time]:
    """Evaluate the network, returning ``{output name: spike time}``."""
    values = evaluate_all(network, inputs, params=params)
    return {name: values[nid] for name, nid in network.outputs.items()}


def evaluate_vector(
    network: ProgramLike,
    vector: tuple[Time, ...],
    *,
    params: Optional[Mapping[str, Time]] = None,
) -> dict[str, Time]:
    """Evaluate with inputs bound positionally in declaration order."""
    names = network.input_names
    if len(vector) != len(names):
        raise NetworkError(
            f"expected {len(names)} inputs, got {len(vector)}"
        )
    return evaluate(network, dict(zip(names, vector)), params=params)
