"""Functional (denotational) evaluation of space-time networks.

Evaluates every node once, in topological order, using the pure algebra
semantics from :mod:`repro.core.algebra`.  This is the reference
implementation of network meaning; the operational event-driven simulator
(:mod:`repro.network.events`) and the gate-level GRL simulator
(:mod:`repro.racelogic.digital`) are checked against it.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Optional

from ..core.value import INF, Infinity, Time, check_time
from .graph import Network, NetworkError


def evaluate_all(
    network: Network,
    inputs: Mapping[str, Time],
    *,
    params: Optional[Mapping[str, Time]] = None,
) -> list[Time]:
    """Return the spike time of every node, indexed by node id.

    *inputs* must bind every primary input; *params* every parameter.
    Unbound inputs are an error — a missing spike must be stated
    explicitly as ``INF``, never implied.
    """
    params = params or {}
    missing_in = set(network.input_ids) - set(inputs)
    if missing_in:
        raise NetworkError(f"unbound inputs: {sorted(missing_in)}")
    missing_p = set(network.param_ids) - set(params)
    if missing_p:
        raise NetworkError(f"unbound params: {sorted(missing_p)}")

    values: list[Time] = [INF] * len(network.nodes)
    for node in network.nodes:
        if node.kind == "input":
            values[node.id] = check_time(inputs[node.name], name=node.name)
        elif node.kind == "param":
            value = check_time(params[node.name], name=node.name)
            if value != 0 and not isinstance(value, Infinity):
                raise NetworkError(
                    f"param {node.name!r} must be 0 or INF, got {value}"
                )
            values[node.id] = value
        elif node.kind == "inc":
            x = values[node.sources[0]]
            values[node.id] = INF if isinstance(x, Infinity) else x + node.amount
        elif node.kind == "min":
            best: Time = INF
            for s in node.sources:
                v = values[s]
                if v < best:
                    best = v
            values[node.id] = best
        elif node.kind == "max":
            worst: Time = 0
            for s in node.sources:
                v = values[s]
                if v > worst:
                    worst = v
            values[node.id] = worst
        else:  # lt
            a = values[node.sources[0]]
            b = values[node.sources[1]]
            values[node.id] = a if a < b else INF
    return values


def evaluate(
    network: Network,
    inputs: Mapping[str, Time],
    *,
    params: Optional[Mapping[str, Time]] = None,
) -> dict[str, Time]:
    """Evaluate the network, returning ``{output name: spike time}``."""
    values = evaluate_all(network, inputs, params=params)
    return {name: values[nid] for name, nid in network.outputs.items()}


def evaluate_vector(
    network: Network,
    vector: tuple[Time, ...],
    *,
    params: Optional[Mapping[str, Time]] = None,
) -> dict[str, Time]:
    """Evaluate with inputs bound positionally in declaration order."""
    names = network.input_names
    if len(vector) != len(names):
        raise NetworkError(
            f"expected {len(names)} inputs, got {len(vector)}"
        )
    return evaluate(network, dict(zip(names, vector)), params=params)
