"""Static timing analysis of space-time networks.

In s-t computing the output time *is* the output value, so "timing
analysis" is abstract interpretation of the semantics itself: given an
interval of possible spike times per input (including "may be absent"),
compute a sound interval per node.  Uses:

* sizing the clocked GRL simulator's horizon and the shift-register
  budget before synthesis,
* bounding a network's makespan (worst-case finish time) for scheduling
  volley pipelines (the Fig. 7 wave model needs successive volleys not
  to overlap),
* quick impossibility checks (an output whose interval is empty of
  finite values can never spike).

The abstraction: each wire carries ``TimeInterval(lo, hi, may_be_absent,
may_spike)`` meaning *if* a spike occurs it lies in ``[lo, hi]``.
Transfer functions mirror the primitives and are proved sound in the
test suite against exhaustive concrete evaluation.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..core.value import Infinity, Time
from .graph import Network, NetworkError


@dataclass(frozen=True)
class TimeInterval:
    """Abstract value: possible spike window plus absence information."""

    lo: int = 0
    hi: int = 0
    may_be_absent: bool = False
    may_spike: bool = True

    def __post_init__(self) -> None:
        if self.may_spike and self.lo > self.hi:
            raise ValueError(f"empty spike window [{self.lo}, {self.hi}]")
        if not self.may_spike and not self.may_be_absent:
            raise ValueError("an interval must allow a spike or absence")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def exactly(cls, t: Time) -> "TimeInterval":
        if isinstance(t, Infinity):
            return cls.never()
        return cls(int(t), int(t))

    @classmethod
    def window(cls, lo: int, hi: int, *, may_be_absent: bool = False) -> "TimeInterval":
        return cls(lo, hi, may_be_absent=may_be_absent)

    @classmethod
    def never(cls) -> "TimeInterval":
        return cls(0, 0, may_be_absent=True, may_spike=False)

    # -- queries -------------------------------------------------------------
    def contains(self, t: Time) -> bool:
        """Is the concrete value *t* within this abstraction?"""
        if isinstance(t, Infinity):
            return self.may_be_absent
        return self.may_spike and self.lo <= int(t) <= self.hi

    @property
    def certain(self) -> bool:
        """True when the spike is guaranteed (never absent)."""
        return self.may_spike and not self.may_be_absent

    def __str__(self) -> str:
        if not self.may_spike:
            return "∅ (never spikes)"
        window = f"[{self.lo}, {self.hi}]"
        return f"{window}∪{{∞}}" if self.may_be_absent else window


def _shift(interval: TimeInterval, amount: int) -> TimeInterval:
    if not interval.may_spike:
        return interval
    return TimeInterval(
        interval.lo + amount,
        interval.hi + amount,
        may_be_absent=interval.may_be_absent,
        may_spike=True,
    )


def _meet(intervals: list[TimeInterval]) -> TimeInterval:
    """Transfer function of min (first arrival)."""
    spiking = [i for i in intervals if i.may_spike]
    if not spiking:
        return TimeInterval.never()
    lo = min(i.lo for i in spiking)
    hi = min(
        (i.hi for i in spiking if i.certain),
        default=max(i.hi for i in spiking),
    )
    absent = all(i.may_be_absent for i in intervals)
    return TimeInterval(lo, max(lo, hi), may_be_absent=absent)


def _join(intervals: list[TimeInterval]) -> TimeInterval:
    """Transfer function of max (last arrival): absent if ANY can be."""
    if not intervals:
        # The empty max is the constant 0 (its identity element).
        return TimeInterval(0, 0)
    if any(not i.may_spike for i in intervals):
        return TimeInterval.never()
    lo = max(i.lo for i in intervals)
    hi = max(i.hi for i in intervals)
    absent = any(i.may_be_absent for i in intervals)
    return TimeInterval(lo, hi, may_be_absent=absent)


def _race(a: TimeInterval, b: TimeInterval) -> TimeInterval:
    """Transfer function of lt: a passes iff strictly before b."""
    if not a.may_spike:
        return TimeInterval.never()
    # Can a ever win?  Needs some a-time strictly below some b-time or an
    # absent b.
    b_unbounded = b.may_be_absent or not b.may_spike
    can_win = b_unbounded or (b.may_spike and a.lo < b.hi)
    if not can_win:
        return TimeInterval.never()
    # Can a ever lose?  If b can spike at or before a's latest.
    can_lose = (
        a.may_be_absent or (b.may_spike and b.lo <= a.hi)
    )
    return TimeInterval(a.lo, a.hi, may_be_absent=can_lose)


def analyze(
    network: Network,
    inputs: Mapping[str, TimeInterval],
    *,
    params: Mapping[str, Time] | None = None,
) -> list[TimeInterval]:
    """Propagate intervals through the network; indexed by node id."""
    params = params or {}
    missing = set(network.input_ids) - set(inputs)
    if missing:
        raise NetworkError(f"unbound inputs: {sorted(missing)}")
    missing_p = set(network.param_ids) - set(params)
    if missing_p:
        raise NetworkError(f"unbound params: {sorted(missing_p)}")

    values: list[TimeInterval] = [TimeInterval.never()] * len(network.nodes)
    for node in network.nodes:
        if node.kind == "input":
            values[node.id] = inputs[node.name]
        elif node.kind == "param":
            values[node.id] = TimeInterval.exactly(params[node.name])
        elif node.kind == "inc":
            values[node.id] = _shift(values[node.sources[0]], node.amount)
        elif node.kind == "min":
            values[node.id] = _meet([values[s] for s in node.sources])
        elif node.kind == "max":
            values[node.id] = _join([values[s] for s in node.sources])
        else:  # lt
            values[node.id] = _race(
                values[node.sources[0]], values[node.sources[1]]
            )
    return values


def output_intervals(
    network: Network,
    inputs: Mapping[str, TimeInterval],
    *,
    params: Mapping[str, Time] | None = None,
) -> dict[str, TimeInterval]:
    """Interval per named output."""
    values = analyze(network, inputs, params=params)
    return {name: values[nid] for name, nid in network.outputs.items()}


def makespan_bound(
    network: Network,
    inputs: Mapping[str, TimeInterval],
    *,
    params: Mapping[str, Time] | None = None,
) -> int:
    """Upper bound on the last possible spike time anywhere in the network.

    The safe horizon for the clocked GRL simulator and the minimum volley
    spacing for pipelined operation.
    """
    values = analyze(network, inputs, params=params)
    return max(
        (v.hi for v in values if v.may_spike),
        default=0,
    )


def default_input_window(network: Network, window: int) -> dict[str, TimeInterval]:
    """Every input may spike in ``[0, window]`` or stay silent."""
    interval = TimeInterval.window(0, window, may_be_absent=True)
    return dict.fromkeys(network.input_ids, interval)
