"""Fluent construction of space-time networks.

:class:`NetworkBuilder` appends nodes in topological order and returns
integer handles (:class:`Ref`) that later nodes consume — the handle
discipline makes accidental cycles impossible, so every built network is
feedforward by construction (the premise of Lemma 1).

Example (the small network of the paper's Fig. 6b)::

    b = NetworkBuilder("fig6b")
    a, c = b.input("a"), b.input("b")
    first = b.min(a, c)
    delayed = b.inc(first, 2)
    b.output("y", b.lt(delayed, b.max(a, c)))
    net = b.build()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .blocks import Node
from .graph import Network, NetworkError


@dataclass(frozen=True)
class Ref:
    """Handle to a node's output wire within a builder."""

    id: int
    builder_id: int


Source = Union[Ref, int]


class NetworkBuilder:
    """Accumulates nodes and produces an immutable :class:`Network`."""

    _next_builder_id = 0

    def __init__(self, name: Optional[str] = None):
        self.name = name or "network"
        self._nodes: list[Node] = []
        self._outputs: dict[str, int] = {}
        self._input_names: set[str] = set()
        self._param_names: set[str] = set()
        self._id = NetworkBuilder._next_builder_id
        NetworkBuilder._next_builder_id += 1

    # -- internal helpers ------------------------------------------------------
    def _resolve(self, src: Source) -> int:
        if isinstance(src, Ref):
            if src.builder_id != self._id:
                raise NetworkError(
                    "a Ref from another builder cannot be used here"
                )
            return src.id
        if isinstance(src, int) and 0 <= src < len(self._nodes):
            return src
        raise NetworkError(f"invalid source {src!r}")

    def _add(self, node: Node) -> Ref:
        self._nodes.append(node)
        return Ref(node.id, self._id)

    def _next_id(self) -> int:
        return len(self._nodes)

    # -- terminals ------------------------------------------------------------
    def input(self, name: str) -> Ref:
        """Declare a primary input line."""
        if name in self._input_names or name in self._param_names:
            raise NetworkError(f"duplicate terminal name {name!r}")
        self._input_names.add(name)
        return self._add(Node(self._next_id(), "input", name=name))

    def inputs(self, *names: str) -> list[Ref]:
        """Declare several inputs at once."""
        return [self.input(n) for n in names]

    def param(self, name: str) -> Ref:
        """Declare a configuration (micro-weight) line, pinned before runs."""
        if name in self._input_names or name in self._param_names:
            raise NetworkError(f"duplicate terminal name {name!r}")
        self._param_names.add(name)
        return self._add(Node(self._next_id(), "param", name=name))

    # -- primitives ------------------------------------------------------------
    def inc(self, src: Source, amount: int = 1, *, tag: str = "") -> Ref:
        """Delay *src* by *amount* unit times (a chain of +1 blocks)."""
        if amount == 0:
            # A zero increment is the identity wire; avoid a useless node.
            return src if isinstance(src, Ref) else Ref(self._resolve(src), self._id)
        node = Node(
            self._next_id(),
            "inc",
            sources=(self._resolve(src),),
            amount=amount,
            tags=(tag,) if tag else (),
        )
        return self._add(node)

    def min(self, *srcs: Source, tag: str = "") -> Ref:
        """First arrival of the given sources.

        With no sources this is the identity constant ``∞`` (a spike
        that never happens).
        """
        ids = tuple(self._resolve(s) for s in srcs)
        if len(ids) == 1:
            return Ref(ids[0], self._id)
        return self._add(
            Node(self._next_id(), "min", sources=ids, tags=(tag,) if tag else ())
        )

    def max(self, *srcs: Source, tag: str = "") -> Ref:
        """Last arrival of the given sources.

        With no sources this is the identity constant ``0`` (all zero
        arrivals have happened immediately).
        """
        ids = tuple(self._resolve(s) for s in srcs)
        if len(ids) == 1:
            return Ref(ids[0], self._id)
        return self._add(
            Node(self._next_id(), "max", sources=ids, tags=(tag,) if tag else ())
        )

    def lt(self, a: Source, b: Source, *, tag: str = "") -> Ref:
        """Pass ``a`` through iff it strictly precedes ``b``."""
        node = Node(
            self._next_id(),
            "lt",
            sources=(self._resolve(a), self._resolve(b)),
            tags=(tag,) if tag else (),
        )
        return self._add(node)

    # -- composites used throughout the paper -----------------------------------
    def comparator(self, a: Source, b: Source) -> tuple[Ref, Ref]:
        """A two-input sorting comparator: returns ``(min, max)`` (Fig. 10)."""
        return self.min(a, b), self.max(a, b)

    def gate(self, x: Source, mu: Source) -> Ref:
        """Micro-weight gate (Fig. 13): pass ``x`` iff ``mu = ∞``; block if 0.

        Implemented exactly as the paper draws it: ``lt(x, mu)``.  With
        ``mu = ∞`` every finite ``x`` passes; with ``mu = 0`` nothing does.
        """
        return self.lt(x, mu)

    def merge(self, other: Network, *, rename: Optional[dict[str, Source]] = None, prefix: str = "") -> dict[str, Ref]:
        """Inline another network's nodes into this builder.

        *rename* maps the other network's input names to sources already in
        this builder; unmapped inputs become fresh inputs (optionally
        prefixed).  Parameters are imported as fresh params.  Returns a
        mapping of the other network's output names to refs here.
        """
        rename = rename or {}
        local: dict[int, int] = {}
        for node in other.nodes:
            if node.kind == "input":
                if node.name in rename:
                    local[node.id] = self._resolve(rename[node.name])
                else:
                    local[node.id] = self._resolve(self.input(prefix + node.name))
            elif node.kind == "param":
                local[node.id] = self._resolve(self.param(prefix + node.name))
            else:
                moved = Node(
                    self._next_id(),
                    node.kind,
                    sources=tuple(local[s] for s in node.sources),
                    amount=node.amount,
                    tags=node.tags,
                )
                self._nodes.append(moved)
                local[node.id] = moved.id
        return {
            out: Ref(local[nid], self._id) for out, nid in other.outputs.items()
        }

    # -- finishing ------------------------------------------------------------
    def output(self, name: str, src: Source) -> None:
        """Name a node's wire as a network output."""
        if name in self._outputs:
            raise NetworkError(f"duplicate output name {name!r}")
        self._outputs[name] = self._resolve(src)

    def build(self) -> Network:
        """Freeze the builder into an immutable :class:`Network`."""
        if not self._outputs:
            raise NetworkError("network has no outputs")
        return Network(self._nodes, self._outputs, name=self.name)
