"""Node kinds of a space-time computing network.

A network (Fig. 7 of the paper) is a feedforward interconnection of
functional blocks.  This library represents it as a DAG of single-output
nodes:

* ``input`` — a primary input line carrying one spike per computation,
* ``param`` — a configuration line (micro-weight, §IV.B) that is pinned to
  ``0`` or ``∞`` before a computation rather than carrying data,
* ``inc`` — the increment/delay primitive (+c),
* ``min`` — first arrival (∧), variadic,
* ``max`` — last arrival (∨), variadic,
* ``lt``  — strictly-earlier-than (≺), two inputs (a, b).

Multi-output components (e.g. the min/max comparator of a sorting network)
are built from several single-output nodes sharing sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Node kinds in the order the builder accepts them.
KINDS = ("input", "param", "inc", "min", "max", "lt")

#: Kinds that compute (have sources), as opposed to terminals.
COMPUTE_KINDS = ("inc", "min", "max", "lt")


@dataclass(frozen=True)
class Node:
    """One block in a space-time network.

    ``sources`` are ids of upstream nodes; by construction every source id
    is smaller than the node's own id, so node order is a topological
    order.  ``amount`` is only meaningful for ``inc`` nodes; ``name`` only
    for ``input``/``param`` nodes.
    """

    id: int
    kind: str
    sources: tuple[int, ...] = ()
    amount: int = 1
    name: Optional[str] = None
    tags: tuple[str, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown node kind {self.kind!r}")
        if self.kind in ("input", "param"):
            if self.sources:
                raise ValueError(f"{self.kind} node cannot have sources")
            if not self.name:
                raise ValueError(f"{self.kind} node needs a name")
        else:
            if any(s >= self.id for s in self.sources):
                raise ValueError(
                    f"node {self.id} has a source {max(self.sources)} that is "
                    "not upstream (network must be feedforward)"
                )
            if any(s < 0 for s in self.sources):
                raise ValueError("negative source id")
        if self.kind == "inc":
            if len(self.sources) != 1:
                raise ValueError("inc takes exactly one source")
            if self.amount < 0:
                raise ValueError("inc amount must be non-negative")
        elif self.kind == "lt":
            if len(self.sources) != 2:
                raise ValueError("lt takes exactly two sources (a, b)")
        # min/max may have zero sources: they are then the lattice
        # identity constants — an empty min is ∞ (no first arrival ever
        # happens), an empty max is 0 (all of its zero arrivals have
        # happened at time 0).  Every evaluator implements exactly this;
        # only the GRL hardware compiler rejects them (a CMOS gate needs
        # physical input wires).

    @property
    def is_terminal(self) -> bool:
        return self.kind in ("input", "param")

    def describe(self) -> str:
        if self.kind == "input":
            return f"input {self.name!r}"
        if self.kind == "param":
            return f"param {self.name!r}"
        if self.kind == "inc":
            return f"inc(+{self.amount}) <- {self.sources[0]}"
        return f"{self.kind}{self.sources}"
