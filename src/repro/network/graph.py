"""The space-time network container.

:class:`Network` is an immutable DAG of :class:`~repro.network.blocks.Node`
objects plus named primary inputs, named configuration parameters, and
named outputs.  Nodes are stored in topological order (the builder
guarantees sources precede consumers), which makes single-pass functional
evaluation and structural analysis straightforward.

Networks are built with :class:`repro.network.builder.NetworkBuilder` and
evaluated with :func:`repro.network.simulator.evaluate` (functional) or
:class:`repro.network.events.EventSimulator` (operational/event-driven).
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Mapping
from typing import Optional

from ..core.function import SpaceTimeFunction
from ..core.value import Time
from .blocks import Node


class NetworkError(ValueError):
    """Raised for structurally invalid networks or bad port references."""


class Network:
    """An immutable feedforward space-time computing network."""

    def __init__(
        self,
        nodes: Iterable[Node],
        outputs: Mapping[str, int],
        *,
        name: Optional[str] = None,
    ):
        self.nodes: tuple[Node, ...] = tuple(nodes)
        self.name = name or "network"
        for i, node in enumerate(self.nodes):
            if node.id != i:
                raise NetworkError(
                    f"node ids must be dense and ordered; node #{i} has id "
                    f"{node.id}"
                )
        self.outputs: dict[str, int] = dict(outputs)
        for out_name, node_id in self.outputs.items():
            if not 0 <= node_id < len(self.nodes):
                raise NetworkError(
                    f"output {out_name!r} references missing node {node_id}"
                )
        self.input_ids: dict[str, int] = {
            n.name: n.id for n in self.nodes if n.kind == "input"
        }
        self.param_ids: dict[str, int] = {
            n.name: n.id for n in self.nodes if n.kind == "param"
        }
        self._consumers: Optional[list[list[int]]] = None
        self._fingerprint: Optional[str] = None

    # -- introspection ----------------------------------------------------------
    @property
    def input_names(self) -> list[str]:
        return list(self.input_ids)

    @property
    def param_names(self) -> list[str]:
        return list(self.param_ids)

    @property
    def output_names(self) -> list[str]:
        return list(self.outputs)

    @property
    def size(self) -> int:
        """Number of compute nodes (excludes inputs and params)."""
        return sum(1 for n in self.nodes if not n.is_terminal)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (
            f"Network({self.name!r}: {len(self.input_ids)} in, "
            f"{len(self.param_ids)} params, {self.size} blocks, "
            f"{len(self.outputs)} out)"
        )

    def consumers(self) -> list[list[int]]:
        """For each node id, the ids of nodes that read its output (cached)."""
        if self._consumers is None:
            fanout: list[list[int]] = [[] for _ in self.nodes]
            for node in self.nodes:
                for src in node.sources:
                    fanout[src].append(node.id)
            self._consumers = fanout
        return self._consumers

    def depth(self) -> int:
        """Longest compute path from any input to any output.

        ``inc`` counts as its delay amount is *temporal*, not structural;
        structurally every compute node counts 1.
        """
        level = [0] * len(self.nodes)
        for node in self.nodes:
            if node.sources:
                level[node.id] = 1 + max(level[s] for s in node.sources)
        if not self.outputs:
            return max(level, default=0)
        return max(level[i] for i in self.outputs.values())

    def fingerprint(self) -> str:
        """Stable structural hash of the network (cached).

        Covers everything evaluation depends on: node kinds, sources,
        ``inc`` amounts, terminal names (they are the binding keys) and
        the output map.  Deliberately excludes the display ``name`` and
        node ``tags`` — like :class:`~repro.network.blocks.Node`
        equality, the fingerprint is blind to annotations that carry no
        semantics.  Serialization round-trips preserve it, which is what
        makes it a safe plan-cache key for the batched evaluator
        (:mod:`repro.network.compile_plan`).
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for node in self.nodes:
                digest.update(
                    repr(
                        (
                            node.kind,
                            node.sources,
                            node.amount if node.kind == "inc" else 0,
                            node.name or "",
                        )
                    ).encode()
                )
            # Declaration order matters: batched plans gather output
            # columns in it, so it must be part of the key.
            digest.update(repr(list(self.outputs.items())).encode())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts

    # -- conversion ----------------------------------------------------------
    def as_function(
        self,
        output: Optional[str] = None,
        *,
        params: Optional[Mapping[str, Time]] = None,
        name: Optional[str] = None,
    ) -> SpaceTimeFunction:
        """View one output of the network as a :class:`SpaceTimeFunction`.

        Inputs are bound positionally in declaration order.  *params*
        pins configuration lines; they must cover all parameters of the
        network.  By Lemma 1, the result is an s-t function whenever the
        parameter values are invariant-safe (``∞``) or the network is
        interpreted as configured hardware.
        """
        from .simulator import evaluate  # local import to avoid a cycle

        if output is None:
            if len(self.outputs) != 1:
                raise NetworkError(
                    "as_function needs output= when the network has "
                    f"{len(self.outputs)} outputs"
                )
            output = next(iter(self.outputs))
        if output not in self.outputs:
            raise NetworkError(f"no output named {output!r}")
        input_order = list(self.input_ids)
        bound_params = dict(params or {})
        missing = set(self.param_ids) - set(bound_params)
        if missing:
            raise NetworkError(f"unbound parameters: {sorted(missing)}")

        def call(*xs: Time) -> Time:
            values = dict(zip(input_order, xs))
            result = evaluate(self, values, params=bound_params)
            return result[output]

        return SpaceTimeFunction(
            call,
            len(input_order),
            name=name or f"{self.name}.{output}",
        )

    def pretty(self) -> str:
        """A readable net-list dump, one node per line."""
        lines = [f"network {self.name}"]
        for node in self.nodes:
            marker = ""
            for out_name, nid in self.outputs.items():
                if nid == node.id:
                    marker += f"  -> output {out_name!r}"
            lines.append(f"  [{node.id:>4}] {node.describe()}{marker}")
        return "\n".join(lines)
