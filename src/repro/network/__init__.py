"""Feedforward space-time computing networks (paper §III, Fig. 7).

The substrate everything else is built on: a DAG of primitive blocks
(:mod:`~repro.network.blocks`), assembled with a builder
(:mod:`~repro.network.builder`), evaluated denotationally
(:mod:`~repro.network.simulator`) or operationally as discrete spike
events (:mod:`~repro.network.events`), with structural validation
(:mod:`~repro.network.validate`) and size/activity statistics
(:mod:`~repro.network.stats`).
"""

from .blocks import COMPUTE_KINDS, KINDS, Node
from .builder import NetworkBuilder, Ref
from .compile_plan import (
    INF_I64,
    MAX_FINITE,
    CompiledPlan,
    clear_plan_cache,
    compile_plan,
    decode_matrix,
    decode_time,
    encode_time,
    encode_volleys,
    evaluate_batch,
    evaluate_batch_all,
    evaluate_batch_dicts,
    plan_cache_info,
    set_plan_cache_limit,
)
from .events import EventSimulator, SimulationResult, SpikeEvent, simulate
from .generate import input_batch, random_inputs, random_network, random_volley
from .graph import Network, NetworkError
from .optimize import OptimizationReport, optimize
from .serialize import dumps, load, loads, network_from_dict, network_to_dict, save
from .simulator import (
    evaluate,
    evaluate_all,
    evaluate_all_interpreted,
    evaluate_vector,
)
from .timing import (
    TimeInterval,
    analyze,
    default_input_window,
    makespan_bound,
    output_intervals,
)
from .stats import ActivityStats, StructureStats, activity, structure
from .validate import (
    ValidationReport,
    check_feedforward,
    live_node_ids,
    strip_dead_nodes,
    validate,
)

__all__ = [
    "COMPUTE_KINDS",
    "INF_I64",
    "KINDS",
    "MAX_FINITE",
    "ActivityStats",
    "CompiledPlan",
    "EventSimulator",
    "Network",
    "NetworkBuilder",
    "NetworkError",
    "Node",
    "OptimizationReport",
    "Ref",
    "SimulationResult",
    "SpikeEvent",
    "StructureStats",
    "TimeInterval",
    "ValidationReport",
    "activity",
    "analyze",
    "clear_plan_cache",
    "compile_plan",
    "default_input_window",
    "check_feedforward",
    "decode_matrix",
    "decode_time",
    "dumps",
    "encode_time",
    "encode_volleys",
    "evaluate",
    "evaluate_all",
    "evaluate_all_interpreted",
    "evaluate_batch",
    "evaluate_batch_all",
    "evaluate_batch_dicts",
    "evaluate_vector",
    "input_batch",
    "plan_cache_info",
    "live_node_ids",
    "load",
    "loads",
    "makespan_bound",
    "network_from_dict",
    "network_to_dict",
    "optimize",
    "output_intervals",
    "random_inputs",
    "random_network",
    "random_volley",
    "save",
    "set_plan_cache_limit",
    "simulate",
    "strip_dead_nodes",
    "structure",
    "validate",
]
