"""Operational event-driven simulation of space-time networks.

Where :mod:`repro.network.simulator` computes each node's output
denotationally, this simulator *runs* the network the way direct hardware
(spiking neurons or race-logic gates) would: spikes are discrete events
delivered along wires, and each block decides to fire using only the
events it has locally observed so far — exactly the paper's stipulation
that "the only information a functional block receives is input spike
times viewed from its local frame of reference".

Firing rules, using only local arrival history:

* ``inc``  — fires ``amount`` units after its source's spike arrives.
* ``min``  — fires at its first arrival.
* ``max``  — fires when the last of its sources has arrived.
* ``lt``   — when ``a`` arrives at ``t``, fires at ``t`` iff ``b`` has not
  arrived at or before ``t``.

Correctness with zero-delay blocks needs care: several events can share a
timestamp, and an ``lt`` must not decide "b is absent" while a same-time
``b`` spike is still in flight.  The simulator therefore orders same-time
events by topological index — in a feedforward network every wire feeding
a block comes from a lower topological index, so when a block is evaluated
at time ``t`` all spikes that can reach it at ``<= t`` have already been
delivered.

The simulator also records the full spike trace and per-wire event counts,
which the energy analyses (§VI) consume.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Optional

from ..core.value import INF, Infinity, Time, check_time
from ..ir.program import CONST_IDENTITY, ProgramLike, classify, ensure_program
from ..obs.metrics import METRICS
from ..obs.trace import MAX_FINITE, NULL_SINK, TraceSink, cause_of
from .graph import Network, NetworkError


@dataclass(frozen=True)
class SpikeEvent:
    """One spike observed on a node's output wire."""

    time: int
    node_id: int


@dataclass
class SimulationResult:
    """Trace and summary of one event-driven run."""

    outputs: dict[str, Time]
    fire_times: list[Time]
    trace: list[SpikeEvent] = field(default_factory=list)
    #: Peak pending-event count in the scheduler queue during the run.
    queue_peak: int = 0

    @property
    def total_spikes(self) -> int:
        return len(self.trace)

    def spikes_at(self, time: int) -> list[SpikeEvent]:
        return [e for e in self.trace if e.time == time]

    @property
    def makespan(self) -> Optional[int]:
        """Time of the last spike, or ``None`` when nothing fired.

        An all-``∞`` run produces no spikes at all; that is *not* the
        same as a computation whose last spike happened at time 0, so
        the silent case is ``None`` rather than a fake 0.
        """
        return max((e.time for e in self.trace), default=None)


class EventSimulator:
    """Reusable event-driven simulator for one network or program.

    The scheduler is seeded from the IR: terminals inject their bound
    spikes, and every IR-declared constant whose lattice identity is 0
    (a zero-source ``max``) injects a spike at time 0 — the simulator no
    longer pattern-matches zero-source nodes itself.
    """

    def __init__(self, network: ProgramLike):
        self.network = ensure_program(network)
        self._consumers = self.network.consumers()

    def run(
        self,
        inputs: Mapping[str, Time],
        *,
        params: Optional[Mapping[str, Time]] = None,
        sink: TraceSink = NULL_SINK,
    ) -> SimulationResult:
        """Run one volley.  *sink*, when enabled, receives the canonical
        spike trace live — one emit per :func:`fire`, exactly when the
        block decides, with the cause derived from the arrivals observed
        so far (provably identical to the denotational cause)."""
        net = self.network
        params = params or {}
        tracing = sink.enabled
        missing_in = set(net.input_ids) - set(inputs)
        if missing_in:
            raise NetworkError(f"unbound inputs: {sorted(missing_in)}")
        missing_p = set(net.param_ids) - set(params)
        if missing_p:
            raise NetworkError(f"unbound params: {sorted(missing_p)}")

        n = len(net.nodes)
        fired: list[Time] = [INF] * n
        # arrivals[node_id][port] = arrival time of the spike on that port
        arrivals: list[dict[int, int]] = [{} for _ in range(n)]
        trace: list[SpikeEvent] = []
        # Heap of (time, node_id, order, port).  Within a timestamp, events
        # sort by topological index (node_id), which in a feedforward
        # network guarantees every spike that can reach a block at <= t is
        # delivered before the block decides.  Within one block, a
        # same-time b-spike (port 1, order -1) is delivered before the
        # a-spike (port 0, order 0) so lt ties correctly produce no spike;
        # self-injections (inc firings, terminals) sort last (order 1).
        heap: list[tuple[int, int, int, int]] = []

        def fire(node_id: int, t: int) -> None:
            if not isinstance(fired[node_id], Infinity):
                return
            fired[node_id] = t
            trace.append(SpikeEvent(t, node_id))
            if tracing and t <= MAX_FINITE:
                # Sources that fire later than t still read as INF here,
                # which cannot change a min/max/lt winner at time t — the
                # emitted cause matches the denotational derivation.
                sink.emit(t, node_id, cause_of(net.nodes[node_id], fired))
            for consumer in self._consumers[node_id]:
                for port, src in enumerate(net.nodes[consumer].sources):
                    if src == node_id:
                        heapq.heappush(heap, (t, consumer, -port, port))

        for node in net.nodes:
            if node.kind == "input":
                t0 = check_time(inputs[node.name], name=node.name)
                if not isinstance(t0, Infinity):
                    heapq.heappush(heap, (t0, node.id, 1, -1))
            elif node.kind == "param":
                value = check_time(params[node.name], name=node.name)
                if value == 0:
                    heapq.heappush(heap, (0, node.id, 1, -1))
                elif not isinstance(value, Infinity):
                    raise NetworkError(
                        f"param {node.name!r} must be 0 or INF, got {value}"
                    )
        for const_id in net.const_ids:
            # IR-declared constants: a finite lattice identity (the empty
            # max, 0) fires immediately; ∞ (the empty min) never fires —
            # no injection needed, it stays INF naturally.
            identity = CONST_IDENTITY[classify(net.nodes[const_id])]
            if not isinstance(identity, Infinity):
                heapq.heappush(heap, (int(identity), const_id, 1, -1))

        queue_peak = len(heap)
        while heap:
            if len(heap) > queue_peak:
                queue_peak = len(heap)
            t, node_id, _, port = heapq.heappop(heap)
            node = self.network.nodes[node_id]
            if port == -1:
                # Terminal injection: the node itself spikes now.
                fire(node_id, t)
                continue
            arrivals[node_id][port] = min(arrivals[node_id].get(port, t), t)
            if not isinstance(fired[node_id], Infinity):
                continue
            if node.kind == "inc":
                # Delayed firing: schedule the spike 'amount' units later.
                heapq.heappush(heap, (t + node.amount, node_id, 1, -1))
            elif node.kind == "min":
                fire(node_id, t)
            elif node.kind == "max":
                if len(arrivals[node_id]) == len(node.sources):
                    fire(node_id, t)
            elif node.kind == "lt":
                if port == 0:
                    b_arrival = arrivals[node_id].get(1)
                    if b_arrival is None or b_arrival > t:
                        fire(node_id, t)
                # A spike on port 1 (b) never causes lt to fire; if a already
                # fired the block, the min() above keeps history consistent.

        outputs = {name: fired[nid] for name, nid in net.outputs.items()}
        trace.sort(key=lambda e: (e.time, e.node_id))
        METRICS.inc("events.runs")
        METRICS.inc("events.spikes", len(trace))
        METRICS.observe_max("events.queue_peak", queue_peak)
        return SimulationResult(
            outputs=outputs,
            fire_times=fired,
            trace=trace,
            queue_peak=queue_peak,
        )


def simulate(
    network: ProgramLike,
    inputs: Mapping[str, Time],
    *,
    params: Optional[Mapping[str, Time]] = None,
    sink: TraceSink = NULL_SINK,
) -> SimulationResult:
    """One-shot event-driven simulation of *network*."""
    return EventSimulator(network).run(inputs, params=params, sink=sink)
