"""Structural validation of space-time networks.

The :class:`~repro.network.builder.NetworkBuilder` makes cycles impossible,
but networks can still be structurally sloppy: dead nodes that feed no
output, outputs aliased to raw inputs, parameters that gate nothing.  This
module reports such issues, and re-proves the feedforward property for
networks constructed by other means (e.g. deserialized ones).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .graph import Network


@dataclass
class ValidationReport:
    """Findings from a structural scan of a network."""

    network_name: str
    is_feedforward: bool = True
    dead_node_ids: list[int] = field(default_factory=list)
    passthrough_outputs: list[str] = field(default_factory=list)
    unused_params: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.is_feedforward and not self.dead_node_ids

    def __str__(self) -> str:
        bits = [f"{self.network_name}:"]
        bits.append("feedforward" if self.is_feedforward else "HAS CYCLES")
        if self.dead_node_ids:
            bits.append(f"{len(self.dead_node_ids)} dead node(s)")
        if self.passthrough_outputs:
            bits.append(f"passthrough outputs {self.passthrough_outputs}")
        if self.unused_params:
            bits.append(f"unused params {self.unused_params}")
        return " ".join(bits)


def live_node_ids(network: Network) -> set[int]:
    """Ids of nodes on some path to an output (backwards reachability)."""
    live: set[int] = set(network.outputs.values())
    stack = list(live)
    while stack:
        nid = stack.pop()
        for src in network.nodes[nid].sources:
            if src not in live:
                live.add(src)
                stack.append(src)
    return live


def check_feedforward(network: Network) -> bool:
    """True if every node's sources strictly precede it (no cycles).

    Node construction already enforces this, so the check only fails for
    hand-built or corrupted node lists; it is cheap insurance before
    simulation, whose correctness depends on the property.
    """
    return all(
        all(src < node.id for src in node.sources) for node in network.nodes
    )


def validate(network: Network) -> ValidationReport:
    """Run all structural checks, returning a report."""
    report = ValidationReport(network.name)
    report.is_feedforward = check_feedforward(network)
    live = live_node_ids(network)
    report.dead_node_ids = [
        n.id for n in network.nodes if n.id not in live and not n.is_terminal
    ]
    report.passthrough_outputs = [
        name
        for name, nid in network.outputs.items()
        if network.nodes[nid].kind == "input"
    ]
    gated = {
        src
        for node in network.nodes
        for src in node.sources
    }
    report.unused_params = [
        name for name, nid in network.param_ids.items() if nid not in gated
    ]
    return report


def strip_dead_nodes(network: Network) -> Network:
    """Return an equivalent network without compute nodes feeding no output.

    Terminals (inputs/params) are kept even when dead so the interface is
    unchanged.
    """
    from .blocks import Node

    live = live_node_ids(network)
    keep = [n for n in network.nodes if n.is_terminal or n.id in live]
    remap = {node.id: i for i, node in enumerate(keep)}
    moved = [
        Node(
            remap[n.id],
            n.kind,
            sources=tuple(remap[s] for s in n.sources),
            amount=n.amount,
            name=n.name,
            tags=n.tags,
        )
        for n in keep
    ]
    outputs = {name: remap[nid] for name, nid in network.outputs.items()}
    return Network(moved, outputs, name=network.name)
