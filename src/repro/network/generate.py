"""Random network and workload generation.

Fuzzing and benchmarking need arbitrary-but-valid feedforward networks
and input volleys; the same generators are used by the library's own test
suite, the hypothesis properties, and the Fig. 7 scaling benchmark, and
are exported for users hardening their own s-t tooling.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.value import INF, Time
from .builder import NetworkBuilder
from .graph import Network


def random_network(
    *,
    n_inputs: int = 4,
    n_blocks: int = 20,
    n_outputs: int = 1,
    max_inc: int = 3,
    operations: tuple[str, ...] = ("inc", "min", "max", "lt"),
    seed: int = 0,
    name: Optional[str] = None,
) -> Network:
    """A random feedforward network of primitives.

    Each block draws its kind from *operations* and its sources uniformly
    from everything built so far, so depth grows organically; outputs tap
    the most recently created wires (guaranteeing non-trivial depth).
    """
    if n_inputs < 1 or n_blocks < 1 or n_outputs < 1:
        raise ValueError("need at least one input, block, and output")
    if n_outputs > n_blocks + n_inputs:
        raise ValueError("more outputs than wires")
    unknown = set(operations) - {"inc", "min", "max", "lt"}
    if unknown:
        raise ValueError(f"unknown operations: {sorted(unknown)}")
    rng = random.Random(seed)
    builder = NetworkBuilder(name or f"random(seed={seed})")
    pool = [builder.input(f"x{i}") for i in range(n_inputs)]
    for _ in range(n_blocks):
        op = rng.choice(operations)
        if op == "inc":
            pool.append(builder.inc(rng.choice(pool), rng.randint(1, max_inc)))
        elif op == "lt":
            pool.append(builder.lt(rng.choice(pool), rng.choice(pool)))
        else:
            arity = rng.randint(2, 3)
            sources = [rng.choice(pool) for _ in range(arity)]
            pool.append(getattr(builder, op)(*sources))
    for index in range(n_outputs):
        builder.output(f"y{index}", pool[-(index + 1)])
    return builder.build()


def random_volley(
    n_lines: int,
    *,
    max_time: int = 7,
    silence_probability: float = 0.2,
    rng: Optional[random.Random] = None,
) -> tuple[Time, ...]:
    """A random volley as a positional tuple."""
    if not 0.0 <= silence_probability <= 1.0:
        raise ValueError("silence_probability must be in [0, 1]")
    rng = rng or random.Random(0)
    return tuple(
        INF if rng.random() < silence_probability else rng.randint(0, max_time)
        for _ in range(n_lines)
    )


def random_inputs(
    network: Network,
    *,
    max_time: int = 7,
    silence_probability: float = 0.2,
    rng: Optional[random.Random] = None,
) -> dict[str, Time]:
    """Random bound inputs for *network* (params not included)."""
    rng = rng or random.Random(0)
    volley = random_volley(
        len(network.input_names),
        max_time=max_time,
        silence_probability=silence_probability,
        rng=rng,
    )
    return dict(zip(network.input_names, volley))


def input_batch(
    network: Network,
    count: int,
    *,
    max_time: int = 7,
    silence_probability: float = 0.2,
    seed: int = 0,
) -> list[dict[str, Time]]:
    """A reproducible batch of random input bindings."""
    rng = random.Random(seed)
    return [
        random_inputs(
            network,
            max_time=max_time,
            silence_probability=silence_probability,
            rng=rng,
        )
        for _ in range(count)
    ]
