"""Opt-in wall-clock profiling hooks.

Phase attribution answers "where does the time go inside one
``evaluate_batch`` call / one conformance case?" — but timing costs
time, so it is **off by default** and every hook collapses to a single
module-flag check when disabled (the overhead budget for the disabled
path across this whole subsystem is ≤ 5% of ``evaluate_batch`` at
B=1024; ``benchmarks/bench_obs_overhead.py`` holds the receipt).

Usage::

    from repro.obs import profiled, METRICS

    with profiled():
        evaluate_batch(net, volleys)          # phases recorded
    METRICS.timer("phase.evaluate_batch.run")  # (calls, seconds)

Instrumented call sites wrap their phases in :func:`phase`; the recorded
timers land in :data:`repro.obs.metrics.METRICS` under ``phase.<name>``
(and ``plan.group.<kind>`` for the compiled engine's per-level
instruction timings).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from .metrics import METRICS

#: Module flag: the one word every disabled hook checks.
_ENABLED = False


def profiling_enabled() -> bool:
    """True while a :func:`profiled` block is active."""
    return _ENABLED


@contextmanager
def profiled() -> Iterator[None]:
    """Enable phase profiling for the duration of the ``with`` block.

    Nestable; the flag restores to its previous value on exit, so an
    outer block is not disarmed by an inner one finishing.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = True
    try:
        yield
    finally:
        _ENABLED = previous


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Attribute the ``with`` block's wall-clock to ``phase.<name>``.

    A no-op (one flag check, no clock read) unless inside
    :func:`profiled`.
    """
    if not _ENABLED:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        METRICS.add_time(f"phase.{name}", time.perf_counter() - start)
