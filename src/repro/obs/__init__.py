"""Observability: spike tracing, runtime metrics, and profiling hooks.

The instrumentation layer of the reproduction.  Three pillars, each
designed so the *disabled* path costs (almost) nothing:

* :mod:`repro.obs.trace` — the canonical per-node spike trace and the
  :class:`~repro.obs.trace.TraceSink` protocol every execution backend
  (interpreted, compiled batch, event-driven, GRL circuit, native
  arena) emits into;
  exports JSONL and Chrome ``chrome://tracing`` formats, and diffs two
  traces down to the first divergent node.
* :mod:`repro.obs.metrics` — the process-wide counter/timer/high-water
  registry (evaluations, volleys, plan-cache hits, spikes, queue depth)
  behind ``python -m repro stats``.
* :mod:`repro.obs.profile` — opt-in wall-clock phase attribution for
  ``evaluate_batch`` and the conformance engine.
* :mod:`repro.obs.rtrace` — request-scoped span tracing for the serving
  path (admission → batch → dispatch → engine → encode), with the
  bounded :class:`~repro.obs.rtrace.FlightRecorder` ring of recent
  request traces dumped on crashes, deadline misses, overload bursts,
  or ``SIGUSR2``.
* :mod:`repro.obs.hist` — log-bucketed sliding-window latency
  histograms (epoch rotation, outcome labels, Prometheus text
  exposition) behind ``serve.stats`` and the ``metrics_text`` op.
"""

from .hist import BUCKET_BOUNDS_S, HistogramVault, LatencyHistogram
from .metrics import METRICS, MetricsRegistry, reset_metrics, snapshot
from .profile import phase, profiled, profiling_enabled
from .rtrace import (
    FLIGHT,
    FlightRecorder,
    RequestTrace,
    Span,
    canonical_jsonl,
    enable_rtrace,
    rtrace_enabled,
    rtracing,
    well_formed,
)
from .rtrace import from_jsonl as spans_from_jsonl
from .rtrace import to_chrome_trace as spans_to_chrome_trace
from .rtrace import to_jsonl as spans_to_jsonl
from .trace import (
    NULL_SINK,
    Divergence,
    NullSink,
    RecordingSink,
    TraceEvent,
    TraceSink,
    cause_of,
    emit_events,
    first_divergence,
    from_jsonl,
    project_events,
    to_chrome_trace,
    to_jsonl,
)

__all__ = [
    "BUCKET_BOUNDS_S",
    "FLIGHT",
    "FlightRecorder",
    "HistogramVault",
    "LatencyHistogram",
    "METRICS",
    "MetricsRegistry",
    "NULL_SINK",
    "Divergence",
    "NullSink",
    "RecordingSink",
    "RequestTrace",
    "Span",
    "TraceEvent",
    "TraceSink",
    "canonical_jsonl",
    "cause_of",
    "emit_events",
    "enable_rtrace",
    "first_divergence",
    "from_jsonl",
    "phase",
    "profiled",
    "profiling_enabled",
    "project_events",
    "reset_metrics",
    "rtrace_enabled",
    "rtracing",
    "snapshot",
    "spans_from_jsonl",
    "spans_to_chrome_trace",
    "spans_to_jsonl",
    "to_chrome_trace",
    "to_jsonl",
    "well_formed",
]
