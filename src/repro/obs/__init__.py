"""Observability: spike tracing, runtime metrics, and profiling hooks.

The instrumentation layer of the reproduction.  Three pillars, each
designed so the *disabled* path costs (almost) nothing:

* :mod:`repro.obs.trace` — the canonical per-node spike trace and the
  :class:`~repro.obs.trace.TraceSink` protocol every execution backend
  (interpreted, compiled batch, event-driven, GRL circuit, native
  arena) emits into;
  exports JSONL and Chrome ``chrome://tracing`` formats, and diffs two
  traces down to the first divergent node.
* :mod:`repro.obs.metrics` — the process-wide counter/timer/high-water
  registry (evaluations, volleys, plan-cache hits, spikes, queue depth)
  behind ``python -m repro stats``.
* :mod:`repro.obs.profile` — opt-in wall-clock phase attribution for
  ``evaluate_batch`` and the conformance engine.
"""

from .metrics import METRICS, MetricsRegistry, reset_metrics, snapshot
from .profile import phase, profiled, profiling_enabled
from .trace import (
    NULL_SINK,
    Divergence,
    NullSink,
    RecordingSink,
    TraceEvent,
    TraceSink,
    cause_of,
    emit_events,
    first_divergence,
    from_jsonl,
    project_events,
    to_chrome_trace,
    to_jsonl,
)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "NULL_SINK",
    "Divergence",
    "NullSink",
    "RecordingSink",
    "TraceEvent",
    "TraceSink",
    "cause_of",
    "emit_events",
    "first_divergence",
    "from_jsonl",
    "phase",
    "profiled",
    "profiling_enabled",
    "project_events",
    "reset_metrics",
    "snapshot",
    "to_chrome_trace",
    "to_jsonl",
]
