"""Request-scoped tracing: span trees for the serving path.

:mod:`repro.obs.trace` answers "which node fired when" inside one
evaluation; this module answers the question one level up — *where did a
served request spend its time?*  A request's lifecycle through
:class:`repro.serve.service.TNNService` is a composition of stages
(admission → micro-batch wait → worker dispatch → engine run → response
encode), and end-to-end latency is exactly the composition of stage
latencies — so that is what we record: one **span** per stage, all
sharing the request's **trace id**, nested under a root ``request``
span.

Design rules (the PR-3 discipline, applied to the request path):

* **Disabled is one flag read.**  Every producer call site checks
  :data:`_ENABLED` (via :func:`rtrace_enabled`) before touching a clock
  or allocating anything; the default is off.
* **Trace ids are propagated, never invented twice.**  A client may
  supply a ``trace`` field on the wire; otherwise the service derives
  one deterministically from its request counter.  A worker-crash retry
  re-dispatches the *same* request objects, so both attempts' spans
  carry the same trace id — the flight recorder shows the retry as two
  ``dispatch`` spans under one trace.
* **Structure is byte-stable, clocks are not.**  :func:`canonical_jsonl`
  renders the structural projection of a trace — ids, parents, names,
  outcome attributes, in span-creation order — with every wall-clock
  field stripped, so two identical runs produce byte-identical
  documents (the same contract spike traces state via
  :func:`repro.obs.trace.to_jsonl`).  :func:`to_jsonl` keeps relative
  microsecond timings for humans and dashboards.

The :class:`FlightRecorder` is the bounded memory of recent request
traces: a ring buffer that can be **dumped** (JSONL + Chrome tracing
JSON) when something goes wrong — a worker crash, a deadline miss, an
overload-rejection burst, or an operator ``SIGUSR2``.  The module-level
:data:`FLIGHT` instance is what the serving stack records into.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Iterable, Optional

#: Module flag: the one word every disabled producer call site checks.
_ENABLED = False


def rtrace_enabled() -> bool:
    """True while request tracing is on (see :func:`enable_rtrace`)."""
    return _ENABLED


def enable_rtrace(on: bool = True) -> None:
    """Switch request tracing on or off process-wide."""
    global _ENABLED
    _ENABLED = bool(on)


class rtracing:
    """Context manager: request tracing on for the ``with`` block.

    Nestable; restores the previous state on exit so an outer block is
    not disarmed by an inner one finishing.
    """

    def __enter__(self) -> "rtracing":
        global _ENABLED
        self._previous = _ENABLED
        _ENABLED = True
        return self

    def __exit__(self, *exc: object) -> None:
        global _ENABLED
        _ENABLED = self._previous


@dataclass(slots=True)
class Span:
    """One timed stage of a request's lifecycle.

    ``span_id`` is the span's creation index *within its trace* (0 is
    always the root ``request`` span) — which makes creation order, and
    therefore the canonical rendering, deterministic for a deterministic
    lifecycle.  ``start``/``end`` are monotonic-clock seconds; ``end``
    is ``None`` while the span is open.  ``attrs`` carries structural
    labels (model, outcome, attempt number, batch size); only the
    *stable* ones survive into the canonical projection (see
    :data:`CANONICAL_ATTRS`).
    """

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Span duration in seconds (0.0 while still open)."""
        return 0.0 if self.end is None else max(0.0, self.end - self.start)


#: Attribute keys that are pure functions of the request stream (never
#: of wall-clock or scheduling), and therefore belong in the canonical
#: byte-stable projection.
CANONICAL_ATTRS = ("model", "outcome", "attempt", "error")


class RequestTrace:
    """The span tree of one served request.

    Producers open and close spans through this object; the service
    finishes the trace exactly once (on the completion path that
    resolves the request) and hands it to the flight recorder.  Spans
    are appended under the GIL from whichever service thread owns the
    stage (admission from the submitter, dispatch from the flusher,
    completion from the pool collector) — stages never overlap for one
    request, so no further locking is needed.

    Internally the trace is an **event log**, not a list of objects:
    every producer call appends one small list
    (``[name, parent, start, end, attrs]``) and span ids are the
    append positions (0 is the root).  This keeps the per-request cost
    on the serving hot path to a few container appends — the
    :class:`Span` view is materialized lazily by :attr:`spans` when
    something actually reads the trace (exports, dumps, tests).
    ``begin``/``end``/``add`` therefore return span *ids*, and the
    ``attrs`` dicts on materialized spans are live views of the log.
    """

    __slots__ = ("trace_id", "_events", "_open", "_cache", "_dirty")

    # Event layout: [name, parent_id, start, end, attrs-dict-or-None].
    def __init__(self, trace_id: str, *, model: str = "", now: Optional[float] = None):
        self.trace_id = trace_id
        self._events: list[list] = [
            [
                "request",
                None,
                monotonic() if now is None else now,
                None,
                {"model": model} if model else None,
            ]
        ]
        self._open: dict[str, int] = {}
        self._cache: Optional[list[Span]] = None
        self._dirty = True

    @property
    def spans(self) -> list[Span]:
        """The materialized :class:`Span` view, built on demand."""
        if self._dirty:
            trace_id = self.trace_id
            self._cache = [
                Span(
                    trace_id=trace_id,
                    span_id=index,
                    parent_id=event[1],
                    name=event[0],
                    start=event[2],
                    end=event[3],
                    attrs=event[4] if event[4] is not None else {},
                )
                for index, event in enumerate(self._events)
            ]
            self._dirty = False
        return self._cache

    @classmethod
    def _from_spans(cls, trace_id: str, spans: list[Span]) -> "RequestTrace":
        """A read-only trace over already-built spans (parse-back path)."""
        trace = cls.__new__(cls)
        trace.trace_id = trace_id
        trace._events = [
            [s.name, s.parent_id, s.start, s.end, s.attrs or None] for s in spans
        ]
        trace._open = {}
        trace._cache = spans
        trace._dirty = False
        return trace

    @property
    def root(self) -> Span:
        return self.spans[0]

    def begin(
        self,
        name: str,
        *,
        parent: Optional[int] = 0,
        now: Optional[float] = None,
        **attrs: Any,
    ) -> int:
        """Open a child span *name* (parented to the root by default)."""
        events = self._events
        index = len(events)
        events.append(
            [name, parent, monotonic() if now is None else now, None, attrs or None]
        )
        self._open[name] = index
        self._dirty = True
        return index

    def end(
        self, name: str, *, now: Optional[float] = None, **attrs: Any
    ) -> Optional[int]:
        """Close the most recent open span called *name* (no-op if absent)."""
        index = self._open.pop(name, None)
        if index is None:
            return None
        event = self._events[index]
        event[3] = monotonic() if now is None else now
        if attrs:
            if event[4] is None:
                event[4] = attrs
            else:
                event[4].update(attrs)
        self._dirty = True
        return index

    # -- positional hot-path aliases ------------------------------------
    #
    # ``begin``/``end`` take keyword arguments for readability, which
    # makes CPython build a kwargs dict on every call.  The serving
    # threads sit on the saturated path and open/close several spans per
    # request, so they use these positional twins instead: same event
    # log, same semantics, no per-call dict.  *attrs*, when given, is a
    # caller-built dict the event takes ownership of.

    def push(self, name: str, now: float, attrs: Optional[dict] = None) -> int:
        """Positional :meth:`begin` (root-parented) for the serving path."""
        events = self._events
        index = len(events)
        events.append([name, 0, now, None, attrs])
        self._open[name] = index
        self._dirty = True
        return index

    def pop(
        self, name: str, now: float, attrs: Optional[dict] = None
    ) -> Optional[int]:
        """Positional :meth:`end` for the serving path (no-op if absent)."""
        index = self._open.pop(name, None)
        if index is None:
            return None
        event = self._events[index]
        event[3] = now
        if attrs:
            if event[4] is None:
                event[4] = attrs
            else:
                event[4].update(attrs)
        self._dirty = True
        return index

    def graft(self, name: str, start: float, end: float, parent: int) -> int:
        """Positional :meth:`add` for the serving path."""
        events = self._events
        index = len(events)
        events.append([name, parent, start, end, None])
        self._dirty = True
        return index

    def seal(self, outcome: str, now: float) -> None:
        """Positional :meth:`finish` (no extra attrs) for the serving path."""
        events = self._events
        if self._open:
            for index in self._open.values():
                if events[index][3] is None:
                    events[index][3] = now
            self._open.clear()
        root = events[0]
        if root[3] is None:
            root[3] = now
        if root[4] is None:
            root[4] = {"outcome": outcome}
        else:
            root[4]["outcome"] = outcome
        self._dirty = True

    def add(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent: Optional[int] = 0,
        **attrs: Any,
    ) -> int:
        """Append an already-timed span (worker-reported engine phases)."""
        events = self._events
        index = len(events)
        events.append([name, parent, start, end, attrs or None])
        self._dirty = True
        return index

    def span_start(self, span_id: int) -> float:
        """The start time of span *span_id* (an anchor for derived spans)."""
        return self._events[span_id][2]

    def stretch(self, end: float) -> None:
        """Extend the root span's end to at least *end* (post-finish spans)."""
        root = self._events[0]
        if root[3] is not None and root[3] < end:
            root[3] = end
            self._dirty = True

    def finish(self, outcome: str, *, now: Optional[float] = None, **attrs: Any) -> None:
        """Close the root span (and any stragglers) with an *outcome*."""
        end = monotonic() if now is None else now
        events = self._events
        if self._open:
            for index in self._open.values():
                if events[index][3] is None:
                    events[index][3] = end
            self._open.clear()
        root = events[0]
        if root[3] is None:
            root[3] = end
        if root[4] is None:
            root[4] = {"outcome": outcome}
        else:
            root[4]["outcome"] = outcome
        if attrs:
            root[4].update(attrs)
        self._dirty = True

    @property
    def outcome(self) -> Optional[str]:
        attrs = self._events[0][4]
        return None if attrs is None else attrs.get("outcome")

    @property
    def finished(self) -> bool:
        return self._events[0][3] is not None

    def duration_s(self) -> float:
        root = self._events[0]
        return 0.0 if root[3] is None else max(0.0, root[3] - root[2])

    def __len__(self) -> int:
        return len(self._events)


# ---------------------------------------------------------------------------
# Exports: JSONL (full + canonical), Chrome tracing, parse-back
# ---------------------------------------------------------------------------

def _span_record(span: Span, origin: float) -> dict:
    """The full JSONL record: timings as integer µs relative to *origin*."""
    record: dict[str, Any] = {
        "trace": span.trace_id,
        "span": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "t0_us": int(round((span.start - origin) * 1e6)),
        "t1_us": (
            None if span.end is None else int(round((span.end - origin) * 1e6))
        ),
    }
    if span.attrs:
        record["attrs"] = {k: span.attrs[k] for k in sorted(span.attrs)}
    return record


def to_jsonl(traces: Iterable[RequestTrace]) -> str:
    """Full JSON-lines dump: one span per line, timings in relative µs.

    Each trace's clock origin is its own root start, so documents from
    different processes line up at 0.  Not byte-stable (timings are
    wall-clock); see :func:`canonical_jsonl` for the stable projection.
    """
    lines = []
    for trace in traces:
        origin = trace.spans[0].start
        for span in trace.spans:
            lines.append(
                json.dumps(_span_record(span, origin), separators=(",", ":"))
            )
    return "".join(line + "\n" for line in lines)


def canonical_jsonl(traces: Iterable[RequestTrace]) -> str:
    """The byte-stable structural projection of traces.

    One span per line in creation order, fields ``trace, span, parent,
    name`` plus only the :data:`CANONICAL_ATTRS` attributes — every
    clock-derived field stripped.  Two identical runs (same requests,
    same service construction) render byte-identical documents; this is
    the form the rtrace test suite pins.
    """
    lines = []
    for trace in traces:
        for span in trace.spans:
            record: dict[str, Any] = {
                "trace": span.trace_id,
                "span": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
            }
            stable = {
                key: span.attrs[key] for key in CANONICAL_ATTRS if key in span.attrs
            }
            if stable:
                record["attrs"] = stable
            lines.append(json.dumps(record, separators=(",", ":")))
    return "".join(line + "\n" for line in lines)


def from_jsonl(text: str) -> list[RequestTrace]:
    """Parse a :func:`to_jsonl` document back into traces.

    Rebuilds one :class:`RequestTrace` per distinct trace id, spans in
    document order, with the µs-relative timings restored as the span
    clock (origin 0).  ``to_jsonl(from_jsonl(doc))`` is byte-identical
    to ``doc`` — the round-trip contract the flight-recorder tests pin.
    """
    spans_by_trace: dict[str, list[Span]] = {}
    order: list[str] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        trace_id = record["trace"]
        spans = spans_by_trace.get(trace_id)
        if spans is None:
            spans = spans_by_trace[trace_id] = []
            order.append(trace_id)
        spans.append(
            Span(
                trace_id=trace_id,
                span_id=record["span"],
                parent_id=record["parent"],
                name=record["name"],
                start=record["t0_us"] / 1e6,
                end=(
                    None
                    if record.get("t1_us") is None
                    else record["t1_us"] / 1e6
                ),
                attrs=dict(record.get("attrs") or {}),
            )
        )
    return [
        RequestTrace._from_spans(tid, spans_by_trace[tid]) for tid in order
    ]


def to_chrome_trace(traces: Iterable[RequestTrace], *, label: str = "rtrace") -> dict:
    """Render traces as Chrome ``chrome://tracing`` / Perfetto JSON.

    Each trace becomes a thread row (tid = its position in the dump,
    named by trace id); each span a complete ``X`` event with relative
    µs timings, so a request reads as a waterfall of its stages.
    """
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": label}}
    ]
    for tid, trace in enumerate(traces, start=1):
        origin = trace.spans[0].start
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": trace.trace_id},
            }
        )
        for span in trace.spans:
            end = span.end if span.end is not None else span.start
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": round((span.start - origin) * 1e6, 3),
                    "dur": round((end - span.start) * 1e6, 3),
                    "args": dict(span.attrs),
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"format": "repro.obs request trace"},
    }


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------

#: Default ring capacity: enough to reconstruct the last few seconds of
#: saturated traffic without unbounded memory.
FLIGHT_CAPACITY = 512


class FlightRecorder:
    """A bounded ring of recently finished request traces.

    The serving stack records every finished trace here (when tracing is
    enabled); anomalies **trip** the recorder with a reason, which
    increments a counter and marks the dump-worthy moment.  ``dump``
    renders the current ring as JSONL (and optionally Chrome JSON) —
    cheap enough to call from a signal handler or a failure path.
    """

    def __init__(self, capacity: int = FLIGHT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._lock = threading.Lock()
        self._ring: deque[RequestTrace] = deque(maxlen=capacity)
        self._trips: dict[str, int] = {}
        self._recorded = 0

    def record(self, trace: RequestTrace) -> None:
        """Add one finished trace to the ring (oldest falls out)."""
        with self._lock:
            self._ring.append(trace)
            self._recorded += 1

    def trip(self, reason: str) -> None:
        """Note a dump-worthy anomaly (crash, deadline, burst, signal)."""
        with self._lock:
            self._trips[reason] = self._trips.get(reason, 0) + 1

    def traces(self) -> list[RequestTrace]:
        """The current ring contents, oldest first."""
        with self._lock:
            return list(self._ring)

    def stats(self) -> dict:
        with self._lock:
            return {
                "recorded": self._recorded,
                "buffered": len(self._ring),
                "capacity": self._ring.maxlen,
                "trips": dict(sorted(self._trips.items())),
            }

    def dump_jsonl(self) -> str:
        """The ring as a full JSONL document (see :func:`to_jsonl`)."""
        return to_jsonl(self.traces())

    def dump_chrome(self, *, label: str = "flight-recorder") -> dict:
        return to_chrome_trace(self.traces(), label=label)

    def dump_to(self, prefix: str, *, reason: str = "manual") -> list[str]:
        """Write ``<prefix>.jsonl`` + ``<prefix>.trace.json``; returns paths.

        The Chrome document embeds the trip *reason* and trip counters
        so a dump is self-describing.
        """
        self.trip(reason)
        traces = self.traces()
        jsonl_path = f"{prefix}.jsonl"
        chrome_path = f"{prefix}.trace.json"
        with open(jsonl_path, "w", encoding="utf-8") as handle:
            handle.write(to_jsonl(traces))
        chrome = to_chrome_trace(traces, label=f"flight-recorder:{reason}")
        chrome["otherData"]["reason"] = reason
        chrome["otherData"]["stats"] = self.stats()
        with open(chrome_path, "w", encoding="utf-8") as handle:
            json.dump(chrome, handle, indent=1)
        return [jsonl_path, chrome_path]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._trips.clear()
            self._recorded = 0


#: The process-wide flight recorder the serving stack records into.
FLIGHT = FlightRecorder()


# ---------------------------------------------------------------------------
# Well-formedness (the property the test suite states with Hypothesis)
# ---------------------------------------------------------------------------

def well_formed(trace: RequestTrace) -> list[str]:
    """Structural violations of *trace* (empty list = well-formed).

    A finished trace is well-formed when every span has a non-negative
    duration, every non-root span names an existing earlier parent, and
    every child's interval lies within its parent's (closed) interval.
    """
    problems: list[str] = []
    by_id = {span.span_id: span for span in trace.spans}
    for span in trace.spans:
        if span.end is not None and span.end < span.start:
            problems.append(f"span {span.span_id} ({span.name}): negative duration")
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None or span.parent_id >= span.span_id:
            problems.append(
                f"span {span.span_id} ({span.name}): bad parent {span.parent_id}"
            )
            continue
        if span.start < parent.start - 1e-9:
            problems.append(
                f"span {span.span_id} ({span.name}): starts before parent"
            )
        if (
            span.end is not None
            and parent.end is not None
            and span.end > parent.end + 1e-9
        ):
            problems.append(
                f"span {span.span_id} ({span.name}): ends after parent"
            )
    return problems
