"""Log-bucketed sliding-window latency histograms.

The serving layer's original latency readout was a fixed-size reservoir
of the most recent N samples — cheap, but biased two ways: a burst of
fast requests evicts the slow tail (the window over-weights whatever
happened last), and only *completed* requests were ever observed, so
deadline misses and overload rejections vanished from the reported p99
entirely.  This module replaces the reservoir with the standard fix:

* **log-spaced buckets** — durations are counted into geometrically
  spaced buckets (factor 2 from 100 µs to ~1.6 s plus an overflow
  bucket), so one small int array covers five decades of latency and a
  quantile is a cumulative walk with interpolation;
* **sliding window by epoch rotation** — observations land in the
  current epoch's array; every ``epoch_s`` seconds the oldest of
  ``n_epochs`` arrays is recycled.  A snapshot merges all live epochs,
  so the readout always covers between ``(n_epochs-1)·epoch_s`` and
  ``n_epochs·epoch_s`` seconds of traffic regardless of request rate —
  burst-proof where a sample reservoir is not;
* **outcome labels** — every observation carries an outcome (``ok``,
  ``deadline``, ``worker-failure``, …), so the tail of *failed* requests
  is a first-class series instead of a blind spot.

:class:`LatencyHistogram` is one (stage, outcome) series;
:class:`HistogramVault` is the keyed family the serving stats own, with
a Prometheus text exposition renderer
(:meth:`HistogramVault.prometheus_lines`) behind the server's
``metrics_text`` op.
"""

from __future__ import annotations

import threading
from time import monotonic
from typing import Iterable, Optional

#: Bucket upper bounds in seconds: 100 µs · 2^k for k = 0..14, then +∞.
#: Covers 0.1 ms .. ~1.6 s, which brackets every serving latency the
#: benchmarks have ever recorded; slower requests land in the overflow.
BUCKET_BOUNDS_S: tuple[float, ...] = tuple(1e-4 * (2.0 ** k) for k in range(15))

#: Sliding-window defaults: 6 epochs of 10 s ⇒ the snapshot always
#: reflects the last 50–60 seconds of traffic.
DEFAULT_EPOCH_S = 10.0
DEFAULT_N_EPOCHS = 6


class LatencyHistogram:
    """One log-bucketed latency series over a rotating epoch window.

    Not thread-safe on its own — the owning :class:`HistogramVault`
    serializes access.  ``observe`` is two comparisons, a bisect-free
    bucket scan over 14 bounds, and one int increment; rotation is
    amortized (a clock compare per observation, an array swap per
    ``epoch_s``).
    """

    __slots__ = ("epoch_s", "_epochs", "_epoch_start", "_count", "_sum", "_max")

    def __init__(
        self,
        *,
        epoch_s: float = DEFAULT_EPOCH_S,
        n_epochs: int = DEFAULT_N_EPOCHS,
        now: Optional[float] = None,
    ):
        if epoch_s <= 0:
            raise ValueError(f"epoch_s must be > 0, got {epoch_s}")
        if n_epochs < 2:
            raise ValueError(f"n_epochs must be >= 2, got {n_epochs}")
        self.epoch_s = epoch_s
        # _epochs[0] is current; rotation pushes a fresh array at the front.
        self._epochs: list[list[int]] = [
            [0] * (len(BUCKET_BOUNDS_S) + 1) for _ in range(n_epochs)
        ]
        self._epoch_start = monotonic() if now is None else now
        self._count = 0  # lifetime observations (not windowed)
        self._sum = 0.0  # lifetime seconds (not windowed)
        self._max = 0.0  # lifetime maximum

    def _rotate(self, now: float) -> None:
        lapsed = now - self._epoch_start
        while lapsed >= self.epoch_s:
            self._epochs.pop()
            self._epochs.insert(0, [0] * (len(BUCKET_BOUNDS_S) + 1))
            self._epoch_start += self.epoch_s
            lapsed -= self.epoch_s
            if all(not any(epoch) for epoch in self._epochs):
                # Fully idle: snap the epoch clock forward instead of
                # spinning through every missed rotation.
                self._epoch_start = now
                break

    def observe(self, seconds: float, *, now: Optional[float] = None) -> None:
        now = monotonic() if now is None else now
        if now - self._epoch_start >= self.epoch_s:
            self._rotate(now)
        slot = len(BUCKET_BOUNDS_S)
        for index, bound in enumerate(BUCKET_BOUNDS_S):
            if seconds <= bound:
                slot = index
                break
        self._epochs[0][slot] += 1
        self._count += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds

    # -- readers -------------------------------------------------------------
    def window_counts(self, *, now: Optional[float] = None) -> list[int]:
        """Per-bucket counts merged across the live window."""
        now = monotonic() if now is None else now
        if now - self._epoch_start >= self.epoch_s:
            self._rotate(now)
        merged = [0] * (len(BUCKET_BOUNDS_S) + 1)
        for epoch in self._epochs:
            for index, count in enumerate(epoch):
                merged[index] += count
        return merged

    def quantile(self, q: float, *, now: Optional[float] = None) -> float:
        """Windowed *q*-quantile in seconds, interpolated within a bucket.

        Interpolation is linear from the bucket's lower bound; the
        overflow bucket reports its lower bound (the largest finite
        bound) — a floor, not a fabrication.
        """
        counts = self.window_counts(now=now)
        total = sum(counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for index, count in enumerate(counts):
            if count == 0:
                continue
            if cumulative + count >= rank:
                low = 0.0 if index == 0 else BUCKET_BOUNDS_S[index - 1]
                if index >= len(BUCKET_BOUNDS_S):
                    return BUCKET_BOUNDS_S[-1]
                high = BUCKET_BOUNDS_S[index]
                fraction = (rank - cumulative) / count
                return low + (high - low) * min(1.0, max(0.0, fraction))
            cumulative += count
        return BUCKET_BOUNDS_S[-1]

    def snapshot(self, *, now: Optional[float] = None) -> dict:
        counts = self.window_counts(now=now)
        window_total = sum(counts)
        return {
            "count": self._count,
            "window": window_total,
            "sum_s": round(self._sum, 6),
            "p50_ms": round(self.quantile(0.50, now=now) * 1e3, 3),
            "p90_ms": round(self.quantile(0.90, now=now) * 1e3, 3),
            "p99_ms": round(self.quantile(0.99, now=now) * 1e3, 3),
            "max_ms": round(self._max * 1e3, 3),
        }

    @property
    def count(self) -> int:
        """Lifetime observation count (monotone; Prometheus ``_count``)."""
        return self._count

    @property
    def sum_s(self) -> float:
        """Lifetime observed seconds (monotone; Prometheus ``_sum``)."""
        return self._sum


class HistogramVault:
    """A thread-safe family of histograms keyed ``(model, stage, outcome)``.

    The serving layer records one observation per finished request per
    stage; the vault lazily creates series, so models and outcomes that
    never occur cost nothing.  Keys are flattened into Prometheus label
    sets by :meth:`prometheus_lines`.
    """

    def __init__(self, *, epoch_s: float = DEFAULT_EPOCH_S, n_epochs: int = DEFAULT_N_EPOCHS):
        self._lock = threading.Lock()
        self._series: dict[tuple[str, str, str], LatencyHistogram] = {}
        self._epoch_s = epoch_s
        self._n_epochs = n_epochs

    def observe(
        self,
        seconds: float,
        *,
        model: str = "",
        stage: str = "total",
        outcome: str = "ok",
        now: Optional[float] = None,
    ) -> None:
        key = (model, stage, outcome)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = LatencyHistogram(
                    epoch_s=self._epoch_s, n_epochs=self._n_epochs, now=now
                )
                self._series[key] = series
            series.observe(seconds, now=now)

    def series(self) -> dict[tuple[str, str, str], LatencyHistogram]:
        with self._lock:
            return dict(self._series)

    def get(
        self, *, model: str = "", stage: str = "total", outcome: str = "ok"
    ) -> Optional[LatencyHistogram]:
        with self._lock:
            return self._series.get((model, stage, outcome))

    def merged(
        self,
        *,
        stage: str = "total",
        outcome: Optional[str] = "ok",
        now: Optional[float] = None,
    ) -> dict:
        """A cross-model snapshot of one stage (optionally one outcome).

        Quantiles are computed over the summed windowed buckets, which
        is exact for histograms (unlike merging per-series quantiles).
        """
        now = monotonic() if now is None else now
        counts = [0] * (len(BUCKET_BOUNDS_S) + 1)
        count = 0
        total_s = 0.0
        max_ms = 0.0
        with self._lock:
            chosen = [
                series
                for (m, s, o), series in self._series.items()
                if s == stage and (outcome is None or o == outcome)
            ]
        for series in chosen:
            for index, value in enumerate(series.window_counts(now=now)):
                counts[index] += value
            snap = series.snapshot(now=now)
            count += snap["count"]
            total_s += snap["sum_s"]
            max_ms = max(max_ms, snap["max_ms"])
        merged = LatencyHistogram(epoch_s=self._epoch_s, n_epochs=2, now=now)
        merged._epochs[0] = counts
        return {
            "count": count,
            "window": sum(counts),
            "p50_ms": round(merged.quantile(0.50, now=now) * 1e3, 3),
            "p90_ms": round(merged.quantile(0.90, now=now) * 1e3, 3),
            "p99_ms": round(merged.quantile(0.99, now=now) * 1e3, 3),
            "max_ms": max_ms,
        }

    def snapshot(self, *, now: Optional[float] = None) -> dict:
        """Nested ``{model: {stage: {outcome: series-snapshot}}}``."""
        now = monotonic() if now is None else now
        out: dict = {}
        for (model, stage, outcome), series in sorted(self.series().items()):
            out.setdefault(model or "_", {}).setdefault(stage, {})[outcome] = (
                series.snapshot(now=now)
            )
        return out

    def prometheus_lines(
        self, *, name: str = "repro_serve_latency_seconds", now: Optional[float] = None
    ) -> list[str]:
        """Prometheus text-exposition lines for every series.

        Emits a classic cumulative histogram per ``(model, stage,
        outcome)`` label set: ``<name>_bucket{...,le="..."}`` lines over
        the *windowed* counts plus lifetime ``_count`` and ``_sum``.
        """
        lines = [
            f"# HELP {name} Served request latency by model, stage, and outcome.",
            f"# TYPE {name} histogram",
        ]
        now = monotonic() if now is None else now
        for (model, stage, outcome), series in sorted(self.series().items()):
            labels = (
                f'model="{_escape(model)}",stage="{_escape(stage)}",'
                f'outcome="{_escape(outcome)}"'
            )
            cumulative = 0
            counts = series.window_counts(now=now)
            for bound, count in zip(BUCKET_BOUNDS_S, counts):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{{labels},le="{_format_float(bound)}"}} {cumulative}'
                )
            cumulative += counts[-1]
            lines.append(f'{name}_bucket{{{labels},le="+Inf"}} {cumulative}')
            lines.append(f"{name}_count{{{labels}}} {series.count}")
            lines.append(f"{name}_sum{{{labels}}} {_format_float(series.sum_s)}")
        return lines

    def reset(self) -> None:
        with self._lock:
            self._series.clear()


def _escape(value: str) -> str:
    """Escape a Prometheus label value (backslash, quote, newline)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_float(value: float) -> str:
    """A compact, locale-free float rendering for exposition lines."""
    text = repr(float(value))
    return text[:-2] if text.endswith(".0") else text


def merge_bucket_counts(counts: Iterable[list[int]]) -> list[int]:
    """Element-wise sum of per-bucket count arrays (exact histogram merge)."""
    merged = [0] * (len(BUCKET_BOUNDS_S) + 1)
    for array in counts:
        for index, value in enumerate(array):
            merged[index] += value
    return merged
