"""Structured spike tracing: who fired, when, and why.

The paper's values are *event times* — a network's entire behaviour is
the set of ``(node, fire_time)`` pairs one volley produces — yet the
evaluation entry points only return output volleys.  This module defines
the **canonical spike trace**, a backend-independent record of every
node firing, and the :class:`TraceSink` protocol through which all four
execution backends emit it:

* the interpreted reference walk
  (:func:`repro.network.simulator.evaluate_all_interpreted`),
* the compiled int64 batch engine
  (:meth:`repro.network.compile_plan.CompiledPlan.run`, per level),
* the operational event simulator
  (:meth:`repro.network.events.EventSimulator.run`, per ``fire``),
* the GRL circuit executor
  (:meth:`repro.racelogic.compile.GRLExecutor.run`, from wire fall
  times; :meth:`repro.racelogic.digital.DigitalSimulator.run`
  additionally exposes raw gate-level 1→0 edge transitions).

Canonical form
--------------
One event per node that fires: ``(fire_time, node_id, cause)``, sorted
by ``(fire_time, node_id)``, with times in sentinel-saturated semantics
(a finite time above :data:`~repro.network.compile_plan.MAX_FINITE`
means ``∞`` and emits no event — the same contract the conformance
oracles compare under).  The *cause* names the structural reason the
node fired and is a pure function of the network and the per-node fire
times:

===========  =========================================================
node kind    cause
===========  =========================================================
``input``    ``"input"``
``param``    ``"param"`` (only a 0-pinned param fires)
``inc``      ``"inc+<amount><-<src>"``
``min``      ``"min<-<src>"`` — the earliest source (ties: lowest id)
``max``      ``"max<-<src>"`` — the latest source (ties: lowest id)
``lt``       ``"lt<-<a>"`` — fires only via its first operand
``max`` (0-ary)  ``"const0"`` — the lattice bottom fires at 0
===========  =========================================================

Because the cause is derived from fire times alone, two backends that
agree on fire times produce **byte-identical** canonical traces
(:func:`to_jsonl`), and two that disagree can be diffed down to the
first divergent node (:func:`first_divergence`) — which is how the
conformance engine turns a shrunk reproducer into an explained one.

Exports are JSON-lines (:func:`to_jsonl`, one event per line, stable
key order) and the Chrome ``chrome://tracing`` / Perfetto JSON format
(:func:`to_chrome_trace`, one row per node, instant events at fire
times).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..core.value import Infinity
from ..network.compile_plan import MAX_FINITE
from .metrics import METRICS


@dataclass(frozen=True, order=True)
class TraceEvent:
    """One node firing, in canonical (time, node, cause) form."""

    time: int
    node_id: int
    cause: str


class TraceSink:
    """Where backends report spike events.

    The protocol is two members: :attr:`enabled` (backends skip all
    tracing work when false — the null sink must cost nothing on hot
    paths) and :meth:`emit`.  Implementations must accept events in
    *any* order; canonical ordering is applied at export time.
    """

    #: Hot paths test this flag before doing any tracing work.
    enabled: bool = False

    def emit(self, time: int, node_id: int, cause: str) -> None:
        """Record one node firing at *time* for reason *cause*."""


class NullSink(TraceSink):
    """The disabled sink: every backend's default, cost of one flag read."""

    enabled = False

    def emit(self, time: int, node_id: int, cause: str) -> None:  # pragma: no cover
        pass


#: Shared do-nothing sink instance (stateless, safe to share).
NULL_SINK = NullSink()


class RecordingSink(TraceSink):
    """A sink that keeps every event in memory for export and diffing."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, time: int, node_id: int, cause: str) -> None:
        self.events.append(TraceEvent(time, node_id, cause))
        METRICS.inc("trace.events")

    def canonical(self) -> list[TraceEvent]:
        """Events in canonical ``(time, node_id)`` order."""
        return sorted(self.events)

    def __len__(self) -> int:
        return len(self.events)


# ---------------------------------------------------------------------------
# Cause derivation
# ---------------------------------------------------------------------------

def _is_finite(value) -> bool:
    """Membership in the emittable range: finite and under the sentinel."""
    return not isinstance(value, Infinity) and int(value) <= MAX_FINITE


def cause_of(node, values) -> str:
    """The canonical cause string for *node* having fired.

    *values* maps node id → fire time and may hold either ``Time``
    values (``INF`` objects for silence) or sentinel-encoded ints — the
    derivation only compares values, and ``∞`` compares greater than
    every finite time in both encodings.  For a ``min`` whose winning
    source has not been resolved yet (the event simulator calls this
    mid-run), unresolved sources read as ``∞``, which cannot win a
    ``min`` that is firing — the derivation is exact either way.
    """
    kind = node.kind
    if kind == "input":
        return "input"
    if kind == "param":
        return "param"
    if kind == "inc":
        return f"inc+{node.amount}<-{node.sources[0]}"
    if kind == "lt":
        return f"lt<-{node.sources[0]}"
    if not node.sources:  # 0-ary max; a 0-ary min never fires
        return "const0"
    if kind == "min":
        winner = min(node.sources, key=lambda s: (values[s], s))
        return f"min<-{winner}"
    # max: the last arrival; ties resolve to the lowest node id.
    winner = min(node.sources, key=lambda s: (-_as_int(values[s]), s))
    return f"max<-{winner}"


def _as_int(value) -> int:
    """Order-preserving int view of a fire time (∞ → a value above all)."""
    return (MAX_FINITE + 1) if isinstance(value, Infinity) else int(value)


def emit_events(sink: TraceSink, network, values) -> None:
    """Emit every finite firing in *values* (node id → time) to *sink*.

    The shared emission helper for backends that hold a complete
    fire-time vector (interpreted walk, GRL read-back); per-level and
    per-event backends emit incrementally with :func:`cause_of` instead.
    """
    for node in network.nodes:
        value = values[node.id]
        if _is_finite(value):
            sink.emit(int(value), node.id, cause_of(node, values))


# ---------------------------------------------------------------------------
# Canonical exports
# ---------------------------------------------------------------------------

def to_jsonl(events: Sequence[TraceEvent], network) -> str:
    """Render a canonical JSON-lines trace (byte-stable across backends).

    One event per line, sorted by ``(time, node_id)``, fixed key order
    ``t, node, kind, name, cause`` and compact separators — two equal
    traces serialize to identical bytes.
    """
    lines = []
    for event in sorted(events):
        node = network.nodes[event.node_id]
        lines.append(
            json.dumps(
                {
                    "t": event.time,
                    "node": event.node_id,
                    "kind": node.kind,
                    "name": node.name,
                    "cause": event.cause,
                },
                separators=(",", ":"),
            )
        )
    return "".join(line + "\n" for line in lines)


def project_events(
    events: Sequence[TraceEvent],
    provenance: Mapping[int, tuple[int, ...]],
) -> list[TraceEvent]:
    """Project an optimized program's trace onto original node identities.

    *provenance* is the :attr:`repro.ir.program.Program.provenance` map:
    each optimized node id → the tuple of original node ids it stands
    for, every one of which provably fires at the same time.  Each event
    is therefore fanned out to one event per original root, so the
    projected trace lists a firing for every original node the optimized
    run still observes.  Original nodes absent from every tuple (dead
    code, provably-never wires) simply have no events — they never fire
    or are unobservable.

    Cause strings are kept verbatim and thus still name *optimized*
    node ids; the projection relates identities, not derivations.
    """
    projected = [
        TraceEvent(event.time, root, event.cause)
        for event in events
        for root in provenance.get(event.node_id, ())
    ]
    return sorted(projected)


def from_jsonl(text: str) -> list[TraceEvent]:
    """Parse a :func:`to_jsonl` document back into canonical events."""
    events = []
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        events.append(TraceEvent(record["t"], record["node"], record["cause"]))
    return sorted(events)


def to_chrome_trace(
    events: Sequence[TraceEvent], network, *, label: str = "spike-trace"
) -> dict:
    """Render a ``chrome://tracing`` / Perfetto JSON object.

    Each node becomes a thread row (tid = node id, named after the
    node), each firing an instant event at ``ts = fire_time`` µs — the
    result reads as a spike raster in the trace viewer.  Serialize with
    ``json.dumps`` and load via ``chrome://tracing`` or ui.perfetto.dev.
    """
    trace_events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    seen_nodes = sorted({e.node_id for e in events})
    for node_id in seen_nodes:
        node = network.nodes[node_id]
        row = f"{node_id:04d} {node.kind}" + (f" {node.name}" if node.name else "")
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": node_id,
                "args": {"name": row},
            }
        )
    for event in sorted(events):
        node = network.nodes[event.node_id]
        trace_events.append(
            {
                "name": f"{node.kind}@{event.time}",
                "ph": "i",
                "s": "t",
                "ts": event.time,
                "pid": 1,
                "tid": event.node_id,
                "args": {"cause": event.cause},
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"network": network.name, "format": "repro.obs spike trace"},
    }


# ---------------------------------------------------------------------------
# Trace diffing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Divergence:
    """The first node two traces disagree about.

    ``left``/``right`` are the node's events in each trace (``None``
    where the node never fired).  "First" means earliest by the
    canonical ``(time, node_id)`` order of whichever side observed it.
    """

    node_id: int
    left: Optional[TraceEvent]
    right: Optional[TraceEvent]

    def describe(
        self, left_name: str = "left", right_name: str = "right", network=None
    ) -> str:
        node_label = f"node {self.node_id}"
        if network is not None:
            node = network.nodes[self.node_id]
            suffix = f" {node.name}" if node.name else ""
            node_label = f"node {self.node_id} ({node.kind}{suffix})"

        def side(event: Optional[TraceEvent]) -> str:
            if event is None:
                return "no spike"
            return f"t={event.time} via {event.cause}"

        return (
            f"first divergent {node_label}: "
            f"{left_name} {side(self.left)} vs {right_name} {side(self.right)}"
        )


def first_divergence(
    left: Sequence[TraceEvent], right: Sequence[TraceEvent]
) -> Optional[Divergence]:
    """The earliest node whose firing record differs, or ``None``.

    Compares per-node ``(time, cause)`` records, walking nodes in the
    canonical order of their earliest appearance on either side — so a
    node that fired in one trace and not the other is found at the time
    it did fire, and a node that fired at different times is found at
    the earlier of the two.
    """
    by_left = {e.node_id: e for e in left}
    by_right = {e.node_id: e for e in right}

    def earliest(node_id: int) -> tuple[int, int]:
        times = [
            d[node_id].time for d in (by_left, by_right) if node_id in d
        ]
        return (min(times), node_id)

    for node_id in sorted(set(by_left) | set(by_right), key=earliest):
        if by_left.get(node_id) != by_right.get(node_id):
            return Divergence(node_id, by_left.get(node_id), by_right.get(node_id))
    return None
