"""Runtime metrics: a process-wide counter/timer/high-water registry.

Every execution backend and the conformance engine report what they did
here — evaluations run, volleys processed, plan-cache hits and misses,
spikes fired, event-queue depth — so a long-running process (or a test)
can ask "what has this library actually been doing?" without changing
any call site.  The registry is deliberately tiny: plain dict updates on
the hot path (a counter increment is one dict store), with snapshot and
reset semantics so tests can assert deltas in isolation.

Three metric families:

* **counters** — monotonically increasing event counts
  (:meth:`MetricsRegistry.inc`);
* **timers** — accumulated wall-clock per label with a call count
  (:meth:`MetricsRegistry.add_time` / :meth:`MetricsRegistry.timeit`),
  fed by the opt-in profiler (:mod:`repro.obs.profile`);
* **maxima** — high-water marks such as the event simulator's peak queue
  depth (:meth:`MetricsRegistry.observe_max`).

The module-level :data:`METRICS` instance is what the library writes to;
``python -m repro stats`` renders it.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class MetricsRegistry:
    """A named bag of counters, accumulated timers, and high-water marks."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._timer_totals: dict[str, float] = {}
        self._timer_counts: dict[str, int] = {}
        self._maxima: dict[str, int] = {}

    # -- writers (hot path: keep these to single dict operations) -----------
    def inc(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def observe_max(self, name: str, value: int) -> None:
        """Raise high-water mark *name* to *value* if it is larger."""
        if value > self._maxima.get(name, 0):
            self._maxima[name] = value

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate *seconds* of wall-clock under timer *name*."""
        self._timer_totals[name] = self._timer_totals.get(name, 0.0) + seconds
        self._timer_counts[name] = self._timer_counts.get(name, 0) + 1

    @contextmanager
    def timeit(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into timer *name* (always on; see
        :func:`repro.obs.profile.phase` for the opt-in variant)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    # -- readers -------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        return self._counters.get(name, 0)

    def timer(self, name: str) -> tuple[int, float]:
        """``(calls, total_seconds)`` for timer *name*."""
        return self._timer_counts.get(name, 0), self._timer_totals.get(name, 0.0)

    def maximum(self, name: str) -> int:
        """Current high-water mark *name* (0 if never observed)."""
        return self._maxima.get(name, 0)

    def snapshot(self) -> dict:
        """A deep, sorted copy of every metric — safe to mutate or diff.

        Shape::

            {"counters": {name: int},
             "timers":   {name: {"calls": int, "total_s": float}},
             "maxima":   {name: int}}
        """
        return {
            "counters": dict(sorted(self._counters.items())),
            "timers": {
                name: {
                    "calls": self._timer_counts[name],
                    "total_s": self._timer_totals[name],
                }
                for name in sorted(self._timer_totals)
            },
            "maxima": dict(sorted(self._maxima.items())),
        }

    def reset(self) -> None:
        """Zero every metric (tests; long-lived processes between windows)."""
        self._counters.clear()
        self._timer_totals.clear()
        self._timer_counts.clear()
        self._maxima.clear()

    def render(self) -> str:
        """Human-readable snapshot, one metric per line."""
        snap = self.snapshot()
        lines = []
        if snap["counters"]:
            lines.append("counters:")
            lines.extend(
                f"  {name:<40} {value}"
                for name, value in snap["counters"].items()
            )
        if snap["timers"]:
            lines.append("timers:")
            lines.extend(
                f"  {name:<40} {entry['calls']:>8} call(s) "
                f"{entry['total_s'] * 1e3:>10.3f} ms"
                for name, entry in snap["timers"].items()
            )
        if snap["maxima"]:
            lines.append("maxima:")
            lines.extend(
                f"  {name:<40} {value}" for name, value in snap["maxima"].items()
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"


#: The process-wide registry every instrumented call site writes to.
METRICS = MetricsRegistry()


def snapshot() -> dict:
    """Snapshot of the global registry (see :meth:`MetricsRegistry.snapshot`)."""
    return METRICS.snapshot()


def reset_metrics() -> None:
    """Reset the global registry (tests and ``repro stats --reset``)."""
    METRICS.reset()
