"""Timing-jitter robustness analysis.

§II.A grounds the model in ~1 ms spike-time reliability inside 5–20 ms
processing windows — computation must tolerate a unit or so of jitter.
This module measures that tolerance for any network or behavioral
function: perturb each input spike by bounded jitter, re-evaluate, and
summarize how outputs move.

Used by the classifier/column tests and available for user networks; the
natural companion to :mod:`repro.learning.quantize` (which does the same
for weight resolution).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Optional

from ..core.value import Infinity, Time

Evaluator = Callable[[tuple[Time, ...]], tuple[Time, ...]]


@dataclass(frozen=True)
class RobustnessReport:
    """How outputs respond to bounded input jitter."""

    jitter: int
    trials: int
    identical_pattern: int  # same firing pattern up to a uniform shift
    mean_time_deviation: float
    appearance_changes: int  # outputs that gained/lost a spike

    @property
    def pattern_stability(self) -> float:
        return self.identical_pattern / self.trials if self.trials else 1.0

    def __str__(self) -> str:
        return (
            f"jitter ±{self.jitter}: {self.pattern_stability:.0%} stable "
            f"patterns, mean |Δt| {self.mean_time_deviation:.2f}, "
            f"{self.appearance_changes} spike appearance change(s) over "
            f"{self.trials} trial(s)"
        )


def _same_pattern(a: Sequence[Time], b: Sequence[Time]) -> bool:
    """Same spike/silence pattern and same relative offsets."""
    finite_a = [int(t) for t in a if not isinstance(t, Infinity)]
    finite_b = [int(t) for t in b if not isinstance(t, Infinity)]
    if len(finite_a) != len(finite_b):
        return False
    if not finite_a:
        return True
    shift_a, shift_b = min(finite_a), min(finite_b)
    for x, y in zip(a, b):
        x_inf, y_inf = isinstance(x, Infinity), isinstance(y, Infinity)
        if x_inf != y_inf:
            return False
        if not x_inf and int(x) - shift_a != int(y) - shift_b:
            return False
    return True


def jitter_input(
    volley: Sequence[Time],
    *,
    jitter: int,
    rng: random.Random,
) -> tuple[Time, ...]:
    """Perturb each finite spike by up to ±jitter (clamped at 0)."""
    return tuple(
        t if isinstance(t, Infinity) else max(0, int(t) + rng.randint(-jitter, jitter))
        for t in volley
    )


def measure_robustness(
    evaluator: Evaluator,
    volleys: Sequence[Sequence[Time]],
    *,
    jitter: int = 1,
    trials_per_volley: int = 10,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> RobustnessReport:
    """Jitter each volley repeatedly and compare outputs to the clean run.

    Determinism contract: the jitter stream is fully determined by
    *seed* (``random.Random(seed)``), defaulting to ``seed=0`` — two
    calls with the same evaluator, volleys, knobs, and seed produce the
    identical report, run to run and machine to machine.  Pass *rng*
    instead to share an external stream (the call then consumes from and
    advances that stream); *seed* and *rng* are mutually exclusive.
    """
    if jitter < 0:
        raise ValueError("jitter must be non-negative")
    if seed is not None and rng is not None:
        raise ValueError("pass either seed= or rng=, not both")
    if rng is None:
        rng = random.Random(0 if seed is None else seed)
    trials = 0
    stable = 0
    deviations: list[float] = []
    appearance = 0
    for volley in volleys:
        clean = evaluator(tuple(volley))
        for _ in range(trials_per_volley):
            trials += 1
            noisy = evaluator(jitter_input(volley, jitter=jitter, rng=rng))
            if _same_pattern(clean, noisy):
                stable += 1
            for x, y in zip(clean, noisy):
                x_inf, y_inf = isinstance(x, Infinity), isinstance(y, Infinity)
                if x_inf != y_inf:
                    appearance += 1
                elif not x_inf:
                    deviations.append(abs(int(x) - int(y)))
    return RobustnessReport(
        jitter=jitter,
        trials=trials,
        identical_pattern=stable,
        mean_time_deviation=(
            sum(deviations) / len(deviations) if deviations else 0.0
        ),
        appearance_changes=appearance,
    )


def network_evaluator(network, *, params=None) -> Evaluator:
    """Adapt a network to the evaluator interface (positional volleys)."""
    from ..network.simulator import evaluate

    names = network.input_names
    out_names = network.output_names

    def run(volley: tuple[Time, ...]) -> tuple[Time, ...]:
        result = evaluate(network, dict(zip(names, volley)), params=params)
        return tuple(result[n] for n in out_names)

    return run


def column_evaluator(column) -> Evaluator:
    """Adapt a WTA column to the evaluator interface."""

    def run(volley: tuple[Time, ...]) -> tuple[Time, ...]:
        return column.forward(volley)

    return run
