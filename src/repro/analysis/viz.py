"""ASCII visualization of temporal data.

Spike timing is inherently visual — the paper communicates through
timelines (Fig. 5), response curves (Fig. 2), and waveforms (Fig. 16).
These renderers produce terminal-friendly views used by the examples and
handy in a REPL:

* :func:`raster` — a spike raster of one or more volleys,
* :func:`response_plot` — a response function as a filled bar chart,
* :func:`waveforms` — GRL logic levels over cycles,
* :func:`trace_raster` — the spike trace of an event-driven run.

Pure string-building; no plotting dependencies.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..core.value import Infinity, Time
from ..coding.volley import Volley
from ..network.events import SimulationResult
from ..neuron.response import ResponseFunction


def raster(
    volleys: Sequence[Volley | Sequence[Time]],
    *,
    labels: Sequence[str] | None = None,
    width: int | None = None,
    mark: str = "|",
) -> str:
    """Spike raster: one row per line, time running left to right.

    Multiple volleys render stacked with blank separators (useful for
    before/after-WTA comparisons).  ``∞`` lines stay empty.
    """
    groups = [tuple(v) for v in volleys]
    if not groups:
        return "(no volleys)"
    finite = [
        int(t) for group in groups for t in group if not isinstance(t, Infinity)
    ]
    horizon = width if width is not None else (max(finite) + 1 if finite else 1)
    lines: list[str] = []
    lines.append("time  " + "".join(str(t % 10) for t in range(horizon)))
    for index, group in enumerate(groups):
        if index:
            lines.append("")
        label = labels[index] if labels and index < len(labels) else f"volley {index}"
        lines.append(f"-- {label}")
        for line_index, t in enumerate(group):
            row = [" "] * horizon
            if not isinstance(t, Infinity) and int(t) < horizon:
                row[int(t)] = mark
            suffix = "" if not isinstance(t, Infinity) else "  (no spike)"
            lines.append(f"x{line_index:<3} |" + "".join(row) + f"|{suffix}")
    return "\n".join(lines)


def response_plot(response: ResponseFunction, *, fill: str = "#") -> str:
    """A response function as a vertical bar chart (like Fig. 2/11)."""
    top = max(response.r_max, 0)
    bottom = min(response.r_min, 0)
    lines: list[str] = []
    for level in range(top, 0, -1):
        row = "".join(
            fill if response(t) >= level else " "
            for t in range(response.t_max + 1)
        )
        lines.append(f"{level:>3} |{row}")
    lines.append("  0 +" + "-" * (response.t_max + 1))
    for level in range(-1, bottom - 1, -1):
        row = "".join(
            fill if response(t) <= level else " "
            for t in range(response.t_max + 1)
        )
        lines.append(f"{level:>3} |{row}")
    lines.append("     " + "".join(str(t % 10) for t in range(response.t_max + 1)))
    return "\n".join(lines)


def waveforms(
    signals: Mapping[str, Sequence[int]],
    *,
    high: str = "¯",
    low: str = "_",
) -> str:
    """GRL logic levels over cycles, one labeled row per signal.

    *signals* maps a name to its level trace (``EdgeSignal.trace`` or the
    raw lists from :func:`repro.racelogic.gates.lt_unlatched_waveform`).
    """
    if not signals:
        return "(no signals)"
    horizon = max(len(levels) for levels in signals.values())
    pad = max(len(name) for name in signals)
    lines = [" " * (pad + 2) + "".join(str(c % 10) for c in range(horizon))]
    for name, levels in signals.items():
        row = "".join(
            (high if level else low) for level in levels
        ).ljust(horizon)
        lines.append(f"{name:>{pad}}  {row}")
    return "\n".join(lines)


def trace_raster(
    result: SimulationResult,
    *,
    node_names: Mapping[int, str] | None = None,
    max_nodes: int = 40,
) -> str:
    """Raster of an event-driven run: which node spiked when.

    Nodes that never fire are omitted; at most *max_nodes* rows render
    (earliest firing first) to keep large networks readable.
    """
    fired = sorted(
        (int(t), node_id)
        for node_id, t in enumerate(result.fire_times)
        if not isinstance(t, Infinity)
    )
    if not fired:
        return "(silent computation)"
    horizon = fired[-1][0] + 1
    shown = fired[:max_nodes]
    lines = ["time  " + "".join(str(t % 10) for t in range(horizon))]
    for t, node_id in shown:
        name = (
            node_names.get(node_id, f"n{node_id}")
            if node_names
            else f"n{node_id}"
        )
        row = [" "] * horizon
        row[t] = "|"
        lines.append(f"{name:>5} |" + "".join(row) + "|")
    if len(fired) > max_nodes:
        lines.append(f"... {len(fired) - max_nodes} more node(s) elided")
    return "\n".join(lines)
