"""Analysis tools: taxonomy testing and cross-implementation equivalence."""

from .equivalence import (
    Disagreement,
    EquivalenceReport,
    check_network,
    compare,
    network_implementations,
)
from .robustness import (
    RobustnessReport,
    column_evaluator,
    jitter_input,
    measure_robustness,
    network_evaluator,
)
from .viz import raster, response_plot, trace_raster, waveforms
from .taxonomy import (
    NetworkClass,
    TaxonomyReport,
    classify_counts,
    classify_simulation,
    synthetic_rate_trace,
)

__all__ = [
    "Disagreement",
    "EquivalenceReport",
    "NetworkClass",
    "RobustnessReport",
    "TaxonomyReport",
    "check_network",
    "classify_counts",
    "column_evaluator",
    "jitter_input",
    "measure_robustness",
    "network_evaluator",
    "classify_simulation",
    "raster",
    "response_plot",
    "compare",
    "network_implementations",
    "synthetic_rate_trace",
    "trace_raster",
    "waveforms",
]
