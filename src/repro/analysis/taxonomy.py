"""The RNN-vs-TNN taxonomy test (paper §II.B, Fig. 3).

The paper's informal test for classifying a spiking network: if every
interconnection line carries at most one spike during a feedforward
computation it is most likely a TNN; if lines must carry at least two
spikes (the minimum to establish a rate) it is most likely an RNN.

This module applies the test mechanically to spike traces — either traces
recorded from our own event simulator (always TNN, by construction) or
externally supplied per-line spike counts (e.g. synthetic rate-coded
traffic, used in tests and the Fig. 3 benchmark).
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass
from enum import Enum

from ..network.events import SimulationResult


class NetworkClass(Enum):
    """Fig. 3's leaf categories, as decidable from spike traffic."""

    TNN = "temporal (at most one spike per line)"
    RNN = "rate-based (every active line spikes repeatedly)"
    MIXED = "indeterminate (some lines singular, some repeating)"
    SILENT = "no spikes observed"


@dataclass(frozen=True)
class TaxonomyReport:
    """Outcome of the spike-count test on one computation."""

    classification: NetworkClass
    lines_observed: int
    active_lines: int
    max_spikes_per_line: int
    mean_spikes_per_active_line: float


def classify_counts(spikes_per_line: Sequence[int]) -> TaxonomyReport:
    """Apply the paper's test to per-line spike counts of one computation."""
    active = [c for c in spikes_per_line if c > 0]
    if not active:
        return TaxonomyReport(
            NetworkClass.SILENT, len(spikes_per_line), 0, 0, 0.0
        )
    peak = max(active)
    if peak <= 1:
        cls = NetworkClass.TNN
    elif min(active) >= 2:
        cls = NetworkClass.RNN
    else:
        cls = NetworkClass.MIXED
    return TaxonomyReport(
        classification=cls,
        lines_observed=len(spikes_per_line),
        active_lines=len(active),
        max_spikes_per_line=peak,
        mean_spikes_per_active_line=sum(active) / len(active),
    )


def classify_simulation(result: SimulationResult) -> TaxonomyReport:
    """Classify a run of our event simulator (lines = node outputs)."""
    counts = [0] * len(result.fire_times)
    for event in result.trace:
        counts[event.node_id] += 1
    return classify_counts(counts)


def synthetic_rate_trace(
    n_lines: int,
    *,
    mean_rate: float = 4.0,
    duration: int = 16,
    seed: int = 0,
) -> list[int]:
    """Per-line spike counts of a Poisson rate-coded computation.

    The counterpoint workload for the Fig. 3 benchmark: every line carries
    multiple spikes because the *rate* is the message.  Lines are
    guaranteed at least 2 spikes (the paper's minimum to establish a
    rate) by resampling.
    """
    rng = random.Random(seed)
    counts = []
    for _ in range(n_lines):
        # Poisson via inversion, floored at 2 spikes.
        lam = mean_rate * duration / 16
        count = 0
        threshold = rng.random()
        cumulative = 0.0
        probability = 2.718281828459045 ** (-lam)
        k = 0
        while cumulative + probability < threshold and k < 10 * lam + 10:
            cumulative += probability
            k += 1
            probability *= lam / k
        count = max(2, k)
        counts.append(count)
    return counts
