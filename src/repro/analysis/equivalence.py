"""Cross-implementation equivalence checking.

The reproduction's central experimental method: the same s-t function has
up to four independent implementations —

1. a behavioral model (e.g. :class:`~repro.neuron.srm0.SRM0Neuron`),
2. denotational network evaluation (:func:`repro.network.simulator.evaluate`),
3. operational event simulation (:class:`~repro.network.events.EventSimulator`),
4. cycle-accurate GRL hardware (:class:`~repro.racelogic.compile.GRLExecutor`),

and the paper's claims are exactly that these all agree.  This module
drives the comparisons over exhaustive or sampled domains and reports the
first disagreements found.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Optional

from ..core.function import enumerate_domain
from ..core.value import Time
from ..network.compile_plan import evaluate_batch_dicts
from ..network.events import EventSimulator
from ..network.graph import Network
from ..network.simulator import evaluate
from ..racelogic.compile import GRLExecutor

Implementation = Callable[[tuple[Time, ...]], dict[str, Time]]


def batched_denotational(
    network: Network, vectors: Iterable[tuple[Time, ...]]
) -> Implementation:
    """A denotational implementation precomputed with the batched engine.

    Evaluates *all* of *vectors* in one compiled call
    (:func:`repro.network.compile_plan.evaluate_batch`) and answers the
    per-vector queries of :func:`compare` from the resulting table —
    turning the harness's dominant cost (one Python network walk per
    vector) into a handful of NumPy reductions.
    """
    vectors = list(vectors)
    results = evaluate_batch_dicts(network, vectors)
    table = dict(zip(vectors, results))
    return lambda vec: table[tuple(vec)]


@dataclass
class Disagreement:
    """One input where two implementations diverge."""

    inputs: tuple[Time, ...]
    results: dict[str, dict[str, Time]]

    def __str__(self) -> str:
        parts = ", ".join(f"{name}={out}" for name, out in self.results.items())
        return f"at {self.inputs}: {parts}"


@dataclass
class EquivalenceReport:
    """Outcome of comparing implementations over a domain."""

    implementations: list[str]
    vectors_checked: int = 0
    disagreements: list[Disagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def __str__(self) -> str:
        verdict = (
            "all agree"
            if self.ok
            else f"{len(self.disagreements)} disagreement(s)"
        )
        return (
            f"{' vs '.join(self.implementations)}: {verdict} over "
            f"{self.vectors_checked} vectors"
        )


def compare(
    implementations: dict[str, Implementation],
    vectors: Iterable[tuple[Time, ...]],
    *,
    max_disagreements: int = 10,
) -> EquivalenceReport:
    """Run every implementation on every vector; collect mismatches."""
    if len(implementations) < 2:
        raise ValueError("need at least two implementations to compare")
    report = EquivalenceReport(list(implementations))
    for vec in vectors:
        report.vectors_checked += 1
        results = {name: impl(vec) for name, impl in implementations.items()}
        baseline = next(iter(results.values()))
        if any(out != baseline for out in results.values()):
            report.disagreements.append(Disagreement(vec, results))
            if len(report.disagreements) >= max_disagreements:
                break
    return report


def network_implementations(network: Network, *, include_grl: bool = True) -> dict[str, Implementation]:
    """The standard trio for a (parameter-free) network."""
    names = network.input_names
    if network.param_ids:
        raise ValueError("bind parameters before comparing implementations")
    event_sim = EventSimulator(network)
    impls: dict[str, Implementation] = {
        "denotational": lambda vec: evaluate(network, dict(zip(names, vec))),
        "event-driven": lambda vec: event_sim.run(dict(zip(names, vec))).outputs,
    }
    if include_grl:
        executor = GRLExecutor(network)
        impls["grl-digital"] = lambda vec: executor.outputs(dict(zip(names, vec)))
    return impls


def check_network(
    network: Network,
    *,
    window: int = 4,
    include_grl: bool = True,
    sample: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> EquivalenceReport:
    """Compare a network's three execution semantics.

    Exhaustive over ``[0..window, ∞]^arity`` by default; pass *sample* to
    draw that many random vectors instead (for wide networks).
    """
    arity = len(network.input_names)
    if sample is None:
        vectors: Iterable[tuple[Time, ...]] = enumerate_domain(arity, window)
    else:
        from ..core.properties import sample_vectors

        vectors = sample_vectors(
            arity, count=sample, max_time=window, rng=rng or random.Random(0)
        )
    # Materialize the domain so the denotational reference can be
    # computed for the whole enumeration in one batched call.
    vectors = list(vectors)
    impls = network_implementations(network, include_grl=include_grl)
    impls["denotational"] = batched_denotational(network, vectors)
    return compare(impls, vectors)
