"""The canonical intermediate representation of space-time networks.

A :class:`Program` is the *one* lowering every execution backend
consumes.  Where :class:`~repro.network.graph.Network` is the user-facing
construction surface (built with a builder, serialized, mutated by test
shrinkers), a ``Program`` is a frozen, topologically *scheduled* view of
the same node table:

* a typed node table (the :class:`~repro.network.blocks.Node` kinds of
  the algebra: ``input``/``param`` terminals, ``inc``/``min``/``max``/
  ``lt`` compute blocks),
* a **level schedule** — nodes grouped by longest structural distance
  from a source-free node, the order every backend executes in (the
  compiled engine fuses whole levels, the event simulator seeds its
  queues from level 0, the interpreted walk visits level by level),
* input/param/output maps identical to the network's,
* a stable **fingerprint** (same hash the network carries, so an
  unoptimized lowering shares the compiled-plan cache entry with its
  source network),
* a **provenance map** — program node id → the original network node
  ids whose fire times the node represents.  The identity map for a
  fresh lowering; optimization passes compose it, which is what keeps
  optimized and unoptimized spike traces comparable
  (:func:`repro.obs.trace.project_events`).

The IR is also the single owner of the **zero-source identity** rule:
a ``min`` with no sources is the lattice top (``∞`` — it never fires),
a ``max`` with no sources is the lattice bottom (it fires at 0).
Backends ask :func:`classify` / :data:`CONST_IDENTITY` instead of
re-deriving the rule; the canonicalization pass
(:mod:`repro.ir.passes`) folds the constants away entirely where the
lattice laws allow.
"""

from __future__ import annotations

import hashlib
import weakref
from collections.abc import Mapping
from typing import Optional, Union

from ..core.value import INF, Time
from ..network.blocks import Node
from ..network.graph import Network, NetworkError

#: Schedule classes a node can lower to.  Zero-source ``min``/``max``
#: are *constants*, not reductions — this classification (and the
#: identity values below) is the single source of truth all four
#: backends consult.
NODE_CLASSES = (
    "input", "param", "inc", "min", "max", "lt", "const-inf", "const-zero",
)

#: The lattice identity each zero-source constant evaluates to.
CONST_IDENTITY: dict[str, Time] = {"const-inf": INF, "const-zero": 0}


def classify(node: Node) -> str:
    """The schedule class of *node* (zero-source min/max → constants)."""
    if node.kind in ("min", "max") and not node.sources:
        return "const-inf" if node.kind == "min" else "const-zero"
    return node.kind


class Program:
    """A frozen, topologically-scheduled s-t program.

    Structurally a :class:`~repro.network.graph.Network` twin — same
    node table, same terminal/output maps, same fingerprint algorithm —
    plus the level schedule and provenance the backends and the pass
    pipeline need.  Build one with :func:`lower` (memoized) or receive
    one from :class:`~repro.ir.passes.PassManager`.
    """

    __slots__ = (
        "nodes",
        "outputs",
        "name",
        "input_ids",
        "param_ids",
        "levels",
        "schedule",
        "provenance",
        "const_ids",
        "_fingerprint",
        "_consumers",
        "__weakref__",
    )

    def __init__(
        self,
        nodes: tuple[Node, ...],
        outputs: Mapping[str, int],
        *,
        name: str = "program",
        provenance: Optional[dict[int, tuple[int, ...]]] = None,
    ):
        self.nodes: tuple[Node, ...] = tuple(nodes)
        self.name = name
        for i, node in enumerate(self.nodes):
            if node.id != i:
                raise NetworkError(
                    f"program node ids must be dense and ordered; node #{i} "
                    f"has id {node.id}"
                )
        self.outputs: dict[str, int] = dict(outputs)
        for out_name, node_id in self.outputs.items():
            if not 0 <= node_id < len(self.nodes):
                raise NetworkError(
                    f"output {out_name!r} references missing node {node_id}"
                )
        self.input_ids: dict[str, int] = {
            n.name: n.id for n in self.nodes if n.kind == "input"
        }
        self.param_ids: dict[str, int] = {
            n.name: n.id for n in self.nodes if n.kind == "param"
        }
        # -- the level schedule ------------------------------------------------
        levels = [0] * len(self.nodes)
        for node in self.nodes:
            if node.sources:
                levels[node.id] = 1 + max(levels[s] for s in node.sources)
        self.levels: tuple[int, ...] = tuple(levels)
        by_level: list[list[int]] = [[] for _ in range(max(levels, default=0) + 1)]
        for node in self.nodes:
            by_level[levels[node.id]].append(node.id)
        self.schedule: tuple[tuple[int, ...], ...] = tuple(
            tuple(ids) for ids in by_level
        )
        #: Zero-source min/max nodes — the lattice identity constants.
        self.const_ids: tuple[int, ...] = tuple(
            n.id for n in self.nodes if classify(n).startswith("const-")
        )
        #: program node id -> original node ids it represents (fire-time
        #: equal).  Identity unless passes rewrote the program.
        self.provenance: dict[int, tuple[int, ...]] = (
            dict(provenance)
            if provenance is not None
            else {n.id: (n.id,) for n in self.nodes}
        )
        self._fingerprint: Optional[str] = None
        self._consumers: Optional[list[list[int]]] = None

    # -- introspection ----------------------------------------------------------
    @property
    def input_names(self) -> list[str]:
        return list(self.input_ids)

    @property
    def param_names(self) -> list[str]:
        return list(self.param_ids)

    @property
    def output_names(self) -> list[str]:
        return list(self.outputs)

    @property
    def size(self) -> int:
        """Number of compute nodes (excludes inputs and params)."""
        return sum(1 for n in self.nodes if not n.is_terminal)

    @property
    def depth(self) -> int:
        """Number of schedule levels past the sources."""
        return len(self.schedule) - 1 if self.schedule else 0

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}: {len(self.input_ids)} in, "
            f"{len(self.param_ids)} params, {self.size} blocks, "
            f"{len(self.schedule)} levels, {len(self.outputs)} out)"
        )

    def consumers(self) -> list[list[int]]:
        """For each node id, the ids of nodes that read its output (cached)."""
        if self._consumers is None:
            fanout: list[list[int]] = [[] for _ in self.nodes]
            for node in self.nodes:
                for src in node.sources:
                    fanout[src].append(node.id)
            self._consumers = fanout
        return self._consumers

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts

    def fingerprint(self) -> str:
        """Stable structural hash — bit-identical to
        :meth:`Network.fingerprint` on the same node table, so an
        unoptimized lowering and its source network share one compiled
        plan; any pass that changes structure changes the key."""
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for node in self.nodes:
                digest.update(
                    repr(
                        (
                            node.kind,
                            node.sources,
                            node.amount if node.kind == "inc" else 0,
                            node.name or "",
                        )
                    ).encode()
                )
            digest.update(repr(list(self.outputs.items())).encode())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # -- conversion ----------------------------------------------------------
    def to_network(self, *, name: Optional[str] = None) -> Network:
        """Materialize back into a :class:`Network` (same node table)."""
        return Network(self.nodes, dict(self.outputs), name=name or self.name)

    def pretty(self) -> str:
        """A readable scheduled dump: one node per line, grouped by level."""
        lines = [f"program {self.name} ({len(self.schedule)} levels)"]
        for level, ids in enumerate(self.schedule):
            lines.append(f"  level {level}:")
            for node_id in ids:
                node = self.nodes[node_id]
                marker = "".join(
                    f"  -> output {out!r}"
                    for out, nid in self.outputs.items()
                    if nid == node_id
                )
                lines.append(f"    [{node_id:>4}] {node.describe()}{marker}")
        return "\n".join(lines)


ProgramLike = Union[Network, Program]

#: Lowering memo: one Program per live Network (dies with the network).
_LOWER_MEMO: "weakref.WeakKeyDictionary[Network, Program]" = (
    weakref.WeakKeyDictionary()
)


def lower(network: Network) -> Program:
    """Lower *network* into its canonical :class:`Program` (memoized).

    The lowering is structural and loss-free: it shares the network's
    (immutable) node tuple, copies the output map, and computes the
    level schedule once.  Memoized weakly per network object, so every
    backend that lowers the same network shares one Program — and,
    through the fingerprint-keyed plan cache, one compiled plan.
    """
    program = _LOWER_MEMO.get(network)
    if program is None:
        program = Program(network.nodes, network.outputs, name=network.name)
        # The network may have hashed itself already; share the digest.
        if network._fingerprint is not None:
            program._fingerprint = network._fingerprint
        _LOWER_MEMO[network] = program
    return program


def ensure_program(source: ProgramLike) -> Program:
    """*source* as a Program: identity for Programs, :func:`lower` else."""
    if isinstance(source, Program):
        return source
    if isinstance(source, Network):
        return lower(source)
    raise TypeError(f"expected Network or Program, got {type(source).__name__}")


def same_structure(left: Program, right: Program) -> bool:
    """True when two programs have identical node tables and outputs.

    Stronger than fingerprint equality in principle (no hash collisions)
    and the relation the pass-pipeline idempotence property is stated
    over; provenance and display names are deliberately ignored.
    """
    return (
        left.nodes == right.nodes
        and left.outputs == right.outputs
    )
