"""repro.ir — the canonical program IR and shared optimizer pipeline.

One lowering (:func:`lower`), one schedule, one optimizer
(:class:`PassManager`) feeding all four execution backends.
"""

from .passes import (
    DEFAULT_PIPELINE,
    PASSES,
    PassManager,
    PassStats,
    PipelineReport,
    optimize_program,
    pass_names,
)
from .program import (
    CONST_IDENTITY,
    NODE_CLASSES,
    Program,
    ProgramLike,
    classify,
    ensure_program,
    lower,
    same_structure,
)

__all__ = [
    "CONST_IDENTITY",
    "DEFAULT_PIPELINE",
    "NODE_CLASSES",
    "PASSES",
    "PassManager",
    "PassStats",
    "PipelineReport",
    "Program",
    "ProgramLike",
    "classify",
    "ensure_program",
    "lower",
    "optimize_program",
    "pass_names",
    "same_structure",
]
