"""The shared optimizer: named, individually-toggleable passes over IR.

Every backend consumes the same :class:`~repro.ir.program.Program`, so
an optimization implemented here — once — speeds up the compiled batch
engine, the interpreted walk, the event simulator, and the GRL netlist
alike.  The :class:`PassManager` runs a configurable pipeline of named
passes to a fingerprint fixpoint and reports pass-by-pass node counts.

Passes (registry order is the default pipeline order):

* ``canonicalize`` — zero-source ``min`` (the lattice top ``∞``) and
  ``lt(x, x)`` fold to *never*, which consumers absorb by the lattice
  identities (``min(x, never) = x``, ``max(x, never) = never``,
  ``lt(never, y) = never``, ``lt(x, never) = x``, ``inc(never) =
  never``); duplicate min/max sources deduplicate (idempotence) and
  single-source min/max collapse to wires.  The single owner of the
  zero-source identity rule — no backend re-derives it.
* ``fold-consts`` — constant folding of cones rooted at ``const0``
  (zero-source ``max``) and, when a parameter binding is supplied,
  at pinned ``param`` lines: a node whose value is provably known
  aliases to the node carrying that value (``min`` with a 0 source is
  0; ``max`` drops 0 sources; ``lt`` against 0 never fires; fully
  known ``min``/``max``/``lt`` fold outright).
* ``fuse-inc`` — ``inc(inc(x, a), b)`` → ``inc(x, a + b)``; a fused
  amount of 0 collapses to a wire.
* ``cse`` — common-subexpression elimination: nodes with the same kind
  and (order-normalized, for min/max) sources merge.
* ``dce`` — dead-node elimination: compute nodes feeding no output are
  dropped (terminals always survive — the interface is frozen).

Every pass preserves the program interface (input/param/output names)
and the denotational semantics, and composes the **provenance map**:
each output node of a pass represents a set of original-network nodes
whose fire times it reproduces exactly.  That invariant is what keeps
optimized and unoptimized spike traces comparable
(:func:`repro.obs.trace.project_events`) and is property-checked by the
conformance suite.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Optional

from ..core.value import Infinity, Time
from ..network.blocks import Node
from .program import Program, ProgramLike, ensure_program

#: Sentinel for a wire that provably never spikes.
_NEVER = -1


# ---------------------------------------------------------------------------
# The rewrite engine shared by every pass
# ---------------------------------------------------------------------------

class _Rewriter:
    """Accumulates a rewritten node table plus the old→new mapping."""

    def __init__(self, program: Program):
        self.program = program
        self.nodes: list[Node] = []
        self.result: dict[int, int] = {}  # old id -> new id, or _NEVER
        self.seen: dict[tuple, int] = {}
        self._never_wire: Optional[int] = None

    def emit(
        self,
        kind: str,
        sources: tuple[int, ...] = (),
        *,
        amount: int = 1,
        name: Optional[str] = None,
        tags: tuple[str, ...] = (),
    ) -> int:
        node = Node(
            len(self.nodes), kind, sources=sources, amount=amount,
            name=name, tags=tags,
        )
        self.nodes.append(node)
        return node.id

    def get_or_emit(
        self,
        key: tuple,
        kind: str,
        sources: tuple[int, ...],
        *,
        amount: int = 1,
        tags: tuple[str, ...] = (),
    ) -> int:
        if key not in self.seen:
            self.seen[key] = self.emit(kind, sources, amount=amount, tags=tags)
        return self.seen[key]

    def copy(self, node: Node) -> int:
        """Re-emit *node* with its sources mapped through ``result``."""
        if node.is_terminal:
            new = self.emit(node.kind, name=node.name)
        else:
            new = self.emit(
                node.kind,
                tuple(self.result[s] for s in node.sources),
                amount=node.amount,
                tags=node.tags,
            )
        self.result[node.id] = new
        return new

    def never_wire(self) -> int:
        """A (shared) wire that is identically ``∞``: ``lt(w, w)``.

        Anchored on the first emitted node — every program has at least
        one terminal, and terminals are always re-emitted.
        """
        if self._never_wire is None:
            self._never_wire = self.emit("lt", (0, 0), tags=("never",))
        return self._never_wire

    def finish(self) -> Program:
        """Close the rewrite: outputs, provenance composition, Program."""
        outputs: dict[str, int] = {}
        never_roots: set[int] = set()
        for out_name, old in self.program.outputs.items():
            new = self.result[old]
            if new == _NEVER:
                new = self.never_wire()
                never_roots.update(self.program.provenance[old])
            outputs[out_name] = new
        prov_sets: dict[int, set[int]] = {n.id: set() for n in self.nodes}
        for old, new in self.result.items():
            if new != _NEVER:
                prov_sets[new].update(self.program.provenance[old])
        if self._never_wire is not None:
            prov_sets[self._never_wire].update(never_roots)
        provenance = {
            nid: tuple(sorted(roots)) for nid, roots in prov_sets.items()
        }
        return Program(
            tuple(self.nodes),
            outputs,
            name=self.program.name,
            provenance=provenance,
        )


def _strip_dead(program: Program) -> Program:
    """Drop unreferenced compute nodes (rewrites leave orphans behind).

    Terminals are kept even when dead — the program interface (input
    and parameter declaration order) is frozen across passes.
    """
    live: set[int] = set(program.outputs.values())
    stack = list(live)
    while stack:
        nid = stack.pop()
        for src in program.nodes[nid].sources:
            if src not in live:
                live.add(src)
                stack.append(src)
    keep = [n for n in program.nodes if n.is_terminal or n.id in live]
    if len(keep) == len(program.nodes):
        return program
    remap = {node.id: i for i, node in enumerate(keep)}
    moved = tuple(
        Node(
            remap[n.id],
            n.kind,
            sources=tuple(remap[s] for s in n.sources),
            amount=n.amount,
            name=n.name,
            tags=n.tags,
        )
        for n in keep
    )
    outputs = {name: remap[nid] for name, nid in program.outputs.items()}
    provenance = {
        remap[nid]: program.provenance[nid]
        for nid in remap
    }
    return Program(
        moved, outputs, name=program.name, provenance=provenance
    )


# ---------------------------------------------------------------------------
# The passes
# ---------------------------------------------------------------------------

def pass_dce(program: Program, *, params=None) -> Program:
    """Dead-node elimination (terminals always survive)."""
    return _strip_dead(program)


def pass_canonicalize(program: Program, *, params=None) -> Program:
    """Zero-source/lattice-identity canonicalization (see module doc)."""
    rw = _Rewriter(program)
    for node in program.nodes:
        if node.is_terminal:
            rw.copy(node)
            continue
        sources = tuple(rw.result[s] for s in node.sources)
        if node.kind == "inc":
            if sources[0] == _NEVER:
                rw.result[node.id] = _NEVER
            else:
                rw.result[node.id] = rw.emit(
                    "inc", sources, amount=node.amount, tags=node.tags
                )
        elif node.kind in ("min", "max"):
            if node.kind == "min" and not sources:
                # The empty min is the lattice top: it never fires.
                rw.result[node.id] = _NEVER
                continue
            if node.kind == "max" and _NEVER in sources:
                rw.result[node.id] = _NEVER
                continue
            if node.kind == "max" and not sources:
                # The empty max is the constant 0 — a real value; keep it.
                rw.result[node.id] = rw.emit("max", (), tags=node.tags)
                continue
            kept = tuple(sorted({s for s in sources if s != _NEVER}))
            if not kept:
                rw.result[node.id] = _NEVER
            elif len(kept) == 1:
                rw.result[node.id] = kept[0]
            else:
                rw.result[node.id] = rw.emit(node.kind, kept, tags=node.tags)
        else:  # lt
            a, b = sources
            if a == _NEVER or a == b:
                rw.result[node.id] = _NEVER
            elif b == _NEVER:
                rw.result[node.id] = a
            else:
                rw.result[node.id] = rw.emit("lt", (a, b), tags=node.tags)
    return rw.finish()


def pass_fold_consts(
    program: Program, *, params: Optional[Mapping[str, Time]] = None
) -> Program:
    """Constant folding of ``const0`` (and known-``param``) cones.

    Tracks, per rewritten node, a *known* value: ``const0`` is 0, a
    pinned param (when a binding is supplied) is 0 or ``∞``, ``inc``
    propagates through addition, and min/max/lt fold when their
    arguments are known.  Folds are expressed as aliases to the node
    already carrying the value, so fire times are preserved exactly
    (the provenance invariant).
    """
    rw = _Rewriter(program)
    known: dict[int, Time] = {}  # new id -> provably constant value

    def value_of(new_id: int) -> Optional[Time]:
        return known.get(new_id)

    for node in program.nodes:
        if node.is_terminal:
            new = rw.copy(node)
            if (
                node.kind == "param"
                and params is not None
                and node.name in params
            ):
                pinned = params[node.name]
                if isinstance(pinned, Infinity):
                    known[new] = pinned
                elif pinned == 0:
                    known[new] = 0
            continue
        sources = tuple(rw.result[s] for s in node.sources)
        values = [value_of(s) for s in sources]

        if node.kind == "inc":
            new = rw.emit("inc", sources, amount=node.amount, tags=node.tags)
            rw.result[node.id] = new
            if values[0] is not None:
                v = values[0]
                known[new] = v if isinstance(v, Infinity) else v + node.amount
            continue

        if node.kind in ("min", "max"):
            if not sources:
                new = rw.emit(node.kind, (), tags=node.tags)
                rw.result[node.id] = new
                if node.kind == "max":
                    known[new] = 0  # const0: the lattice bottom
                continue
            if node.kind == "min":
                zeros = [s for s, v in zip(sources, values) if v == 0]
                if zeros:
                    # min(x, 0) = 0: alias the 0-valued source.
                    rw.result[node.id] = zeros[0]
                    continue
                kept = [
                    s for s, v in zip(sources, values)
                    if not isinstance(v, Infinity)
                ]
                if not kept:
                    rw.result[node.id] = _NEVER
                    continue
                if all(value_of(s) is not None for s in kept):
                    winner = min(kept, key=lambda s: (value_of(s), s))
                    rw.result[node.id] = winner
                    known.setdefault(winner, value_of(winner))
                    continue
                if len(kept) == 1:
                    rw.result[node.id] = kept[0]
                    continue
                rw.result[node.id] = rw.emit(
                    "min", tuple(kept), tags=node.tags
                )
                continue
            # max
            if any(isinstance(v, Infinity) for v in values):
                rw.result[node.id] = _NEVER
                continue
            kept = [s for s, v in zip(sources, values) if v != 0]
            if not kept:
                # max of all-0 sources is 0: alias any of them.
                rw.result[node.id] = sources[0]
                continue
            if all(value_of(s) is not None for s in kept):
                winner = max(kept, key=lambda s: (value_of(s), -s))
                rw.result[node.id] = winner
                continue
            if len(kept) == 1:
                rw.result[node.id] = kept[0]
                continue
            rw.result[node.id] = rw.emit("max", tuple(kept), tags=node.tags)
            continue

        # lt
        a, b = sources
        va, vb = values
        if vb == 0 or isinstance(va, Infinity):
            # Nothing strictly precedes 0; ∞ precedes nothing.
            rw.result[node.id] = _NEVER
        elif isinstance(vb, Infinity):
            rw.result[node.id] = a
        elif va is not None and vb is not None:
            rw.result[node.id] = a if va < vb else _NEVER
        else:
            rw.result[node.id] = rw.emit("lt", (a, b), tags=node.tags)
    return rw.finish()


def pass_fuse_inc(program: Program, *, params=None) -> Program:
    """Coalesce ``inc`` chains; a total delay of 0 collapses to a wire."""
    rw = _Rewriter(program)
    for node in program.nodes:
        if node.kind != "inc":
            rw.copy(node)
            continue
        src = rw.result[node.sources[0]]
        amount = node.amount
        if rw.nodes[src].kind == "inc":
            amount += rw.nodes[src].amount
            src = rw.nodes[src].sources[0]
        if amount == 0:
            rw.result[node.id] = src
        else:
            rw.result[node.id] = rw.emit(
                "inc", (src,), amount=amount, tags=node.tags
            )
    return rw.finish()


def pass_cse(program: Program, *, params=None) -> Program:
    """Merge structurally identical compute nodes.

    min/max keys normalize source order and multiplicity (both ops are
    commutative and idempotent); ``lt`` is neither, so its key is
    positional.  Terminals never merge — their names are binding keys.
    """
    rw = _Rewriter(program)
    for node in program.nodes:
        if node.is_terminal:
            rw.copy(node)
            continue
        sources = tuple(rw.result[s] for s in node.sources)
        if node.kind == "inc":
            key = ("inc", sources[0], node.amount)
        elif node.kind in ("min", "max"):
            key = (node.kind, tuple(sorted(set(sources))))
        else:
            key = ("lt", sources)
        rw.result[node.id] = rw.get_or_emit(
            key, node.kind, sources, amount=node.amount, tags=node.tags
        )
    return rw.finish()


#: Registered passes, in default pipeline order.
PASSES: "OrderedDict[str, Callable[..., Program]]" = OrderedDict(
    (
        ("canonicalize", pass_canonicalize),
        ("fold-consts", pass_fold_consts),
        ("fuse-inc", pass_fuse_inc),
        ("cse", pass_cse),
        ("dce", pass_dce),
    )
)

#: The default pipeline: every registered pass, registry order.
DEFAULT_PIPELINE: tuple[str, ...] = tuple(PASSES)


def pass_names() -> list[str]:
    """Registered pass names, in default pipeline order."""
    return list(PASSES)


# ---------------------------------------------------------------------------
# The pass manager
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PassStats:
    """Node accounting for one pass application."""

    name: str
    iteration: int
    before_nodes: int
    after_nodes: int

    @property
    def removed(self) -> int:
        return self.before_nodes - self.after_nodes


@dataclass
class PipelineReport:
    """Pass-by-pass node counts for one :meth:`PassManager.run`."""

    stats: list[PassStats] = field(default_factory=list)
    iterations: int = 0

    @property
    def before_nodes(self) -> int:
        return self.stats[0].before_nodes if self.stats else 0

    @property
    def after_nodes(self) -> int:
        return self.stats[-1].after_nodes if self.stats else 0

    @property
    def removed(self) -> int:
        return self.before_nodes - self.after_nodes

    def by_pass(self) -> dict[str, int]:
        """Total nodes removed, per pass name, across all iterations."""
        totals: dict[str, int] = {}
        for entry in self.stats:
            totals[entry.name] = totals.get(entry.name, 0) + entry.removed
        return totals

    def describe(self) -> str:
        """The pass-by-pass node-count report (CLI and bench surface)."""
        lines = [
            f"pipeline: {self.before_nodes} -> {self.after_nodes} nodes "
            f"in {self.iterations} iteration(s)"
        ]
        for entry in self.stats:
            marker = f"-{entry.removed}" if entry.removed else "·"
            lines.append(
                f"  [{entry.iteration}] {entry.name:<14} "
                f"{entry.before_nodes:>5} -> {entry.after_nodes:<5} ({marker})"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


class PassManager:
    """Runs a named pass pipeline over a Program to a fixpoint.

    *passes* selects and orders the pipeline (default: every registered
    pass); *params*, when given, additionally specializes ``param``
    cones in ``fold-consts`` to that binding — only sound when the
    resulting program is run under the same binding.  The pipeline
    repeats until the program fingerprint stops changing (or
    *max_iterations*), which is what makes optimization idempotent:
    re-running the manager on its own output is a no-op.
    """

    def __init__(
        self,
        passes: Optional[Sequence[str]] = None,
        *,
        params: Optional[Mapping[str, Time]] = None,
        max_iterations: int = 10,
    ):
        names = list(passes) if passes is not None else list(DEFAULT_PIPELINE)
        unknown = [n for n in names if n not in PASSES]
        if unknown:
            raise ValueError(
                f"unknown pass(es) {unknown}; registered: {pass_names()}"
            )
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.passes = tuple(names)
        self.params = dict(params) if params else None
        self.max_iterations = max_iterations

    def run(self, source: ProgramLike) -> tuple[Program, PipelineReport]:
        """Optimize *source*, returning ``(program, report)``."""
        program = ensure_program(source)
        report = PipelineReport()
        for iteration in range(1, self.max_iterations + 1):
            fingerprint = program.fingerprint()
            for name in self.passes:
                before = len(program)
                program = PASSES[name](program, params=self.params)
                report.stats.append(
                    PassStats(
                        name=name,
                        iteration=iteration,
                        before_nodes=before,
                        after_nodes=len(program),
                    )
                )
            report.iterations = iteration
            if program.fingerprint() == fingerprint:
                break
        return program, report


def optimize_program(
    source: ProgramLike,
    *,
    passes: Optional[Sequence[str]] = None,
    params: Optional[Mapping[str, Time]] = None,
    max_iterations: int = 10,
) -> tuple[Program, PipelineReport]:
    """One-shot :class:`PassManager` run with the default pipeline."""
    manager = PassManager(passes, params=params, max_iterations=max_iterations)
    return manager.run(source)
