"""Wiring kernels into one program: ``compose`` and :class:`KernelGraph`.

Two composition surfaces over one inliner:

* :func:`compose` — the associative series operator (Lynch & Musco's
  compositional shape): stages are inlined left to right, every input
  port binds to the unique earlier *output* port with the same name (or
  unifies with the like-named exposed input), and every output port is
  exported.  Because matching is by name, inlining preserves node order,
  and unbound terminals are emitted in place, the flattening of
  ``compose(compose(a, b), c)`` and ``compose(a, compose(b, c))`` is the
  *same node table* — associativity holds up to program fingerprint,
  before and after the pass pipeline.
* :class:`KernelGraph` — arbitrary explicit wiring between named kernel
  *instances* (fan-out, cross-links, port exposure under chosen names),
  for compositions the series operator cannot express.

Both tag every inlined node with ``k:<instance>`` — the **per-kernel
provenance** that survives the pass pipeline: optimization passes
compose the IR provenance map, so :func:`kernel_attribution` can name
the kernel instance(s) an *optimized* node descends from even after
canonicalize/fold/fuse/cse/dce rewrote the program.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Optional

from ..core.value import Time
from ..ir.passes import PipelineReport, optimize_program
from ..ir.program import Program
from ..network.blocks import Node
from .kernel import Kernel, KernelError

#: Node-tag prefix carrying kernel-instance provenance.
INSTANCE_TAG = "k:"


class _Inliner:
    """Accumulates one flat node table across kernel inlinings."""

    def __init__(self, name: str):
        self.name = name
        self.nodes: list[Node] = []
        self.outputs: dict[str, int] = {}
        self._terminal_names: set[str] = set()

    def emit_terminal(self, kind: str, name: str) -> int:
        if name in self._terminal_names:
            raise KernelError(
                f"terminal name {name!r} already used in composition "
                f"{self.name!r}"
            )
        self._terminal_names.add(name)
        node = Node(len(self.nodes), kind, name=name)
        self.nodes.append(node)
        return node.id

    def inline(
        self,
        kernel: Kernel,
        *,
        tag: str,
        input_bindings: Mapping[str, int],
        input_name: "callable",
        param_name: "callable",
        shared_terminals: Optional[dict[tuple[str, str], int]] = None,
    ) -> dict[str, int]:
        """Splice *kernel*'s node table in; returns output port → node id.

        ``input_bindings`` maps input ports to already-emitted node ids
        (those terminals are aliased away, not emitted).  Unbound
        terminals are emitted **in place** — at the position the
        kernel's own table put them, which is what keeps series
        composition associative — under the name ``input_name(port)`` /
        ``param_name(port)``; when *shared_terminals* is given, terminals
        resolving to an already-emitted name unify with it instead of
        colliding.  Every emitted node gains the ``k:<tag>`` provenance
        tag on top of tags it already carries (nested compositions
        accumulate their full instance path).
        """
        local: dict[int, int] = {}
        outputs: dict[str, int] = {}
        instance_tag = INSTANCE_TAG + tag
        for node in kernel.program.nodes:
            if node.kind == "input":
                if node.name in input_bindings:
                    local[node.id] = input_bindings[node.name]
                    continue
                name = input_name(node.name)
                key = ("input", name)
                if shared_terminals is not None and key in shared_terminals:
                    local[node.id] = shared_terminals[key]
                    continue
                new = self.emit_terminal("input", name)
                if shared_terminals is not None:
                    shared_terminals[key] = new
                local[node.id] = new
            elif node.kind == "param":
                name = param_name(node.name)
                key = ("param", name)
                if shared_terminals is not None and key in shared_terminals:
                    local[node.id] = shared_terminals[key]
                    continue
                new = self.emit_terminal("param", name)
                if shared_terminals is not None:
                    shared_terminals[key] = new
                local[node.id] = new
            else:
                moved = Node(
                    len(self.nodes),
                    node.kind,
                    sources=tuple(local[s] for s in node.sources),
                    amount=node.amount,
                    tags=node.tags + (instance_tag,),
                )
                self.nodes.append(moved)
                local[node.id] = moved.id
        for port, nid in kernel.program.outputs.items():
            outputs[port] = local[nid]
        return outputs

    def finish(self) -> Program:
        if not self.outputs:
            raise KernelError(
                f"composition {self.name!r} exposes no outputs"
            )
        return Program(tuple(self.nodes), self.outputs, name=self.name)


# ---------------------------------------------------------------------------
# The composition product
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Composition:
    """A flat program plus the kernel instances it was composed from."""

    kernel: Kernel
    instances: tuple[str, ...]

    @property
    def program(self) -> Program:
        return self.kernel.program

    def optimized(
        self, *, params: Optional[Mapping[str, Time]] = None
    ) -> tuple[Program, PipelineReport]:
        """The composed program through the full pass pipeline."""
        return optimize_program(self.program, params=params)

    def attribution(
        self, program: Optional[Program] = None
    ) -> dict[int, tuple[str, ...]]:
        """Kernel-instance provenance per node of *program*.

        *program* defaults to the raw composed program; pass the output
        of :meth:`optimized` to attribute nodes the pass pipeline
        rewrote — the IR provenance map relates them back to composed
        nodes, whose ``k:`` tags name their instances.
        """
        return kernel_attribution(
            program if program is not None else self.program, self.program
        )


def kernel_attribution(
    program: Program, original: Optional[Program] = None
) -> dict[int, tuple[str, ...]]:
    """Map each node of *program* to the kernel instances it descends from.

    For every node, follows the IR provenance map back to *original*'s
    node ids (identity when *program* is unoptimized) and collects their
    ``k:<instance>`` tags.  Terminals and pass-synthesized nodes with no
    tagged roots map to an empty tuple.
    """
    source = original if original is not None else program
    attribution: dict[int, tuple[str, ...]] = {}
    for node in program.nodes:
        roots = program.provenance.get(node.id, (node.id,))
        names: set[str] = set()
        for root in roots:
            for tag in source.nodes[root].tags:
                if tag.startswith(INSTANCE_TAG):
                    names.add(tag[len(INSTANCE_TAG):])
        attribution[node.id] = tuple(sorted(names))
    return attribution


# ---------------------------------------------------------------------------
# compose: the associative series operator
# ---------------------------------------------------------------------------

def compose(*kernels: Kernel, name: Optional[str] = None) -> Kernel:
    """Series-compose kernels by port-name matching (associative).

    Stages inline left to right.  Each stage's input port binds to the
    earlier stage *output* port with the same name; input ports matching
    nothing become input ports of the composition, and like-named
    unmatched inputs (and params) **unify** into one shared terminal.
    Every stage's output ports are all exported — a matched output is an
    internal wire *and* still observable — so duplicate output names
    across stages are an error.

    Under those rules the flattened node table is independent of
    grouping: ``compose(compose(a, b), c)`` and
    ``compose(a, compose(b, c))`` produce fingerprint-identical
    programs, before and after the pass pipeline (the property suite
    pins this).
    """
    if len(kernels) < 1:
        raise KernelError("compose needs at least one kernel")
    if len(kernels) == 1:
        return kernels[0]
    label = name or "∘".join(k.name for k in kernels)
    inliner = _Inliner(label)
    shared: dict[tuple[str, str], int] = {}
    available: dict[str, int] = {}
    instances: list[str] = []
    counts: dict[str, int] = {}
    for kernel in kernels:
        counts[kernel.name] = counts.get(kernel.name, 0) + 1
        instance = (
            kernel.name
            if counts[kernel.name] == 1
            else f"{kernel.name}#{counts[kernel.name]}"
        )
        instances.append(instance)
        bindings = {
            port: available[port]
            for port in kernel.inputs
            if port in available
        }
        outputs = inliner.inline(
            kernel,
            tag=instance,
            input_bindings=bindings,
            input_name=lambda port: port,
            param_name=lambda port: port,
            shared_terminals=shared,
        )
        for port, nid in outputs.items():
            if port in inliner.outputs:
                raise KernelError(
                    f"output port {port!r} exported by two stages of "
                    f"{label!r}; rename one (Kernel.renamed)"
                )
            inliner.outputs[port] = nid
            available[port] = nid
    program = inliner.finish()
    return Kernel(program, name=label)


# ---------------------------------------------------------------------------
# KernelGraph: explicit wiring between named instances
# ---------------------------------------------------------------------------

def _split_port(ref: str) -> tuple[str, str]:
    instance, _, port = ref.partition(".")
    if not instance or not port:
        raise KernelError(
            f"port reference {ref!r} must be 'instance.port'"
        )
    return instance, port


class KernelGraph:
    """Explicit port-level wiring of kernel instances into one program.

    Instances are added in topological order (a wire may only flow from
    an earlier instance to a later one — feedforward by construction,
    the same handle discipline as :class:`NetworkBuilder`).  External
    inputs are declared with :meth:`input` and may fan out to several
    ports; outputs are exported with :meth:`output`.  When no output is
    exported explicitly, :meth:`build` exports *every* instance output
    as ``instance.port``.
    """

    def __init__(self, name: str = "kernel-graph"):
        self.name = name
        self._instances: list[tuple[str, Kernel]] = []
        self._order: dict[str, int] = {}
        #: (dst instance, dst port) -> ("wire", src instance, src port)
        #: or ("ext", input name)
        self._bindings: dict[tuple[str, str], tuple] = {}
        self._inputs: list[str] = []
        self._outputs: list[tuple[str, str, str]] = []

    # -- construction ------------------------------------------------------------
    def add(self, instance: str, kernel: Kernel) -> "KernelGraph":
        """Add a kernel instance under a unique dot-free name."""
        if not instance or "." in instance:
            raise KernelError(
                f"instance name {instance!r} must be non-empty and dot-free"
            )
        if instance in self._order:
            raise KernelError(f"duplicate instance name {instance!r}")
        self._order[instance] = len(self._instances)
        self._instances.append((instance, kernel))
        return self

    def _kernel(self, instance: str) -> Kernel:
        if instance not in self._order:
            raise KernelError(f"unknown instance {instance!r}")
        return self._instances[self._order[instance]][1]

    def _check_dst(self, instance: str, port: str) -> None:
        kernel = self._kernel(instance)
        if port not in kernel.inputs:
            raise KernelError(
                f"{instance!r} ({kernel.name}) has no input port {port!r}; "
                f"ports: {kernel.inputs}"
            )
        if (instance, port) in self._bindings:
            raise KernelError(f"input {instance}.{port} is already bound")

    def wire(self, src: str, dst: str) -> "KernelGraph":
        """Connect ``src='a.out'`` to ``dst='b.in'`` (a must precede b)."""
        src_inst, src_port = _split_port(src)
        dst_inst, dst_port = _split_port(dst)
        src_kernel = self._kernel(src_inst)
        if src_port not in src_kernel.outputs:
            raise KernelError(
                f"{src_inst!r} ({src_kernel.name}) has no output port "
                f"{src_port!r}; ports: {src_kernel.outputs}"
            )
        self._check_dst(dst_inst, dst_port)
        if self._order[src_inst] >= self._order[dst_inst]:
            raise KernelError(
                f"wire {src} -> {dst} flows backwards; add instances in "
                "topological order"
            )
        self._bindings[(dst_inst, dst_port)] = ("wire", src_inst, src_port)
        return self

    def input(self, name: str, *dsts: str) -> "KernelGraph":
        """Declare an external input and (optionally) fan it out to ports."""
        if name in self._inputs:
            raise KernelError(f"duplicate external input {name!r}")
        self._inputs.append(name)
        for dst in dsts:
            dst_inst, dst_port = _split_port(dst)
            self._check_dst(dst_inst, dst_port)
            self._bindings[(dst_inst, dst_port)] = ("ext", name)
        return self

    def output(self, name: str, src: str) -> "KernelGraph":
        """Export ``src='a.out'`` as composition output *name*."""
        if any(name == existing for existing, _, _ in self._outputs):
            raise KernelError(f"duplicate output name {name!r}")
        src_inst, src_port = _split_port(src)
        src_kernel = self._kernel(src_inst)
        if src_port not in src_kernel.outputs:
            raise KernelError(
                f"{src_inst!r} ({src_kernel.name}) has no output port "
                f"{src_port!r}; ports: {src_kernel.outputs}"
            )
        self._outputs.append((name, src_inst, src_port))
        return self

    # -- the build ---------------------------------------------------------------
    def build(self) -> Composition:
        """Inline every instance and freeze the composed program."""
        if not self._instances:
            raise KernelError("kernel graph has no instances")
        inliner = _Inliner(self.name)
        external: dict[str, int] = {
            name: -1 for name in self._inputs
        }
        # External inputs are emitted up front, in declaration order —
        # a deterministic interface regardless of which instance reads
        # them first.
        for name in self._inputs:
            external[name] = inliner.emit_terminal("input", name)
        resolved: dict[tuple[str, str], int] = {}
        for instance, kernel in self._instances:
            bindings: dict[str, int] = {}
            for port in kernel.inputs:
                bound = self._bindings.get((instance, port))
                if bound is None:
                    continue
                if bound[0] == "ext":
                    bindings[port] = external[bound[1]]
                else:
                    bindings[port] = resolved[(bound[1], bound[2])]
            outputs = inliner.inline(
                kernel,
                tag=instance,
                input_bindings=bindings,
                input_name=lambda port, inst=instance: f"{inst}.{port}",
                param_name=lambda port, inst=instance: f"{inst}.{port}",
            )
            for port, nid in outputs.items():
                resolved[(instance, port)] = nid
        if self._outputs:
            for name, src_inst, src_port in self._outputs:
                inliner.outputs[name] = resolved[(src_inst, src_port)]
        else:
            for instance, kernel in self._instances:
                for port in kernel.outputs:
                    inliner.outputs[f"{instance}.{port}"] = resolved[
                        (instance, port)
                    ]
        program = inliner.finish()
        return Composition(
            kernel=Kernel(program, name=self.name),
            instances=tuple(name for name, _ in self._instances),
        )
