"""repro.kernels — the s-t kernel standard library.

Reusable space-time kernels (STICK-style interval arithmetic, memory,
synchronization, routing, accumulation) authored as IR subprograms with
named ports, a composition operator wiring them into single programs
that flow through the pass pipeline and all five backends, and the
per-kernel conformance contract (function tables, generator family,
served demos).
"""

from .compose import (
    Composition,
    KernelGraph,
    compose,
    kernel_attribution,
)
from .kernel import Kernel, KernelError
from .library import (
    KERNELS,
    KernelSpec,
    accumulator,
    barrier,
    build_kernel,
    demo_network,
    interval_intersect,
    interval_max,
    interval_min,
    interval_shift,
    interval_union,
    kernel_names,
    latch,
    router,
)

__all__ = [
    "Kernel",
    "KernelError",
    "KernelGraph",
    "Composition",
    "compose",
    "kernel_attribution",
    "KERNELS",
    "KernelSpec",
    "kernel_names",
    "build_kernel",
    "demo_network",
    "interval_shift",
    "interval_min",
    "interval_max",
    "interval_union",
    "interval_intersect",
    "latch",
    "barrier",
    "router",
    "accumulator",
]
