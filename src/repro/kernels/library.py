"""The s-t kernel standard library (STICK-style primitives).

Each factory returns a :class:`~repro.kernels.kernel.Kernel` — a small,
reusable IR subprogram with named ports — built from the paper's four
primitives (``inc``/``min``/``max``/``lt``).  The families:

* **interval arithmetic** — a spike-time interval is a pair of lines
  ``(lo, hi)``: constant shift (tropical addition by a constant delay),
  pointwise min/max (the lattice meet/join of interval endpoints), and
  the set operations union/intersection.  Subtraction has no s-t
  realization: the algebra is monotone over ``N0∞`` (Lemma 1's
  invariance), so a kernel can delay a spike but never advance it.
* **memory** — :func:`latch`: a temporal latch that captures its data
  spike iff it arrives strictly before the latch closes (the same
  ``lt`` race the paper's micro-weight gate is built on), with a
  ``missed`` complement output.
* **synchronization** — :func:`barrier`: releases when *all* inputs
  have arrived (``max``), with a configurable post-release slack delay,
  plus a ``first`` (``min``) tap.
* **routing** — :func:`router`: a k-way earliest-wins selector; output
  line *i* relays input *i* iff it strictly preceded every other input
  (1-WTA built directly from ``min``/``lt``).
* **accumulation** — :func:`accumulator`: fires at the k-th earliest
  arrival of its *n* inputs (a counting/threshold cell), via the order
  statistic ``kth(x) = min over all k-subsets S of max(S)``.

:data:`KERNELS` is the registry; every entry ships the full per-kernel
contract: an inferred function table (:meth:`Kernel.contract`), a
conformance generator family (``kernels`` in
:mod:`repro.testing.generators`), and a served demo
(``python -m repro kernels --demo <name>``, ``python -m repro serve
--kernel <name>``).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from itertools import combinations
from typing import Optional

from ..core.value import INF
from ..network.builder import NetworkBuilder
from ..network.graph import Network
from .kernel import Kernel, KernelError


# ---------------------------------------------------------------------------
# Interval arithmetic
# ---------------------------------------------------------------------------

def interval_shift(amount: int = 2) -> Kernel:
    """Shift an interval later by a constant: ``[lo, hi] + amount``.

    Tropical (min-plus) addition by a constant — the only addition the
    algebra admits; ``inc`` saturates at the int64 sentinel like every
    other delay chain.
    """
    if amount < 1:
        raise KernelError("interval-shift needs amount >= 1")
    b = NetworkBuilder("interval-shift")
    lo, hi = b.input("lo"), b.input("hi")
    b.output("lo_out", b.inc(lo, amount))
    b.output("hi_out", b.inc(hi, amount))
    return Kernel.from_builder(
        b,
        name="interval-shift",
        description=f"shift both interval endpoints later by +{amount}",
    )


def interval_min() -> Kernel:
    """Pointwise lattice meet of two intervals: ``[a∧b]`` endpoint-wise."""
    b = NetworkBuilder("interval-min")
    a_lo, a_hi = b.input("a_lo"), b.input("a_hi")
    b_lo, b_hi = b.input("b_lo"), b.input("b_hi")
    b.output("lo_out", b.min(a_lo, b_lo))
    b.output("hi_out", b.min(a_hi, b_hi))
    return Kernel.from_builder(
        b,
        name="interval-min",
        description="pointwise min (lattice meet) of two intervals",
    )


def interval_max() -> Kernel:
    """Pointwise lattice join of two intervals: ``[a∨b]`` endpoint-wise."""
    b = NetworkBuilder("interval-max")
    a_lo, a_hi = b.input("a_lo"), b.input("a_hi")
    b_lo, b_hi = b.input("b_lo"), b.input("b_hi")
    b.output("lo_out", b.max(a_lo, b_lo))
    b.output("hi_out", b.max(a_hi, b_hi))
    return Kernel.from_builder(
        b,
        name="interval-max",
        description="pointwise max (lattice join) of two intervals",
    )


def interval_union() -> Kernel:
    """Smallest interval containing both: ``[min(los), max(his)]``."""
    b = NetworkBuilder("interval-union")
    a_lo, a_hi = b.input("a_lo"), b.input("a_hi")
    b_lo, b_hi = b.input("b_lo"), b.input("b_hi")
    b.output("lo_out", b.min(a_lo, b_lo))
    b.output("hi_out", b.max(a_hi, b_hi))
    return Kernel.from_builder(
        b,
        name="interval-union",
        description="interval hull: earliest lo, latest hi",
    )


def interval_intersect() -> Kernel:
    """Interval intersection: ``[max(los), min(his)]`` plus a witness.

    ``proper`` relays the intersection's ``lo`` iff the intersection has
    strictly positive width (``lo ≺ hi``); on empty or point
    intersections it stays silent (``∞``).
    """
    b = NetworkBuilder("interval-intersect")
    a_lo, a_hi = b.input("a_lo"), b.input("a_hi")
    b_lo, b_hi = b.input("b_lo"), b.input("b_hi")
    lo = b.max(a_lo, b_lo)
    hi = b.min(a_hi, b_hi)
    b.output("lo_out", lo)
    b.output("hi_out", hi)
    b.output("proper", b.lt(lo, hi))
    return Kernel.from_builder(
        b,
        name="interval-intersect",
        description="interval intersection with a positive-width witness",
    )


# ---------------------------------------------------------------------------
# Memory, synchronization, routing, accumulation
# ---------------------------------------------------------------------------

def latch(hold: int = 0) -> Kernel:
    """A temporal latch: capture ``data`` iff it beats ``close``.

    ``q`` relays the data spike (delayed by *hold*) iff it arrived
    strictly before the latch closed — the ``lt`` race the paper's
    micro-weight gate generalizes.  ``missed`` is the complement
    witness: it relays ``close`` iff the latch closed strictly first.
    On a tie both stay silent (``∞``) — strictness is the algebra's,
    not an implementation choice.
    """
    if hold < 0:
        raise KernelError("latch hold must be non-negative")
    b = NetworkBuilder("latch")
    data, close = b.input("data"), b.input("close")
    captured = b.lt(data, close)
    b.output("q", b.inc(captured, hold))
    b.output("missed", b.lt(close, data))
    return Kernel.from_builder(
        b,
        name="latch",
        description="capture data iff it strictly precedes close",
    )


def barrier(n: int = 3, slack: int = 1) -> Kernel:
    """An n-way synchronizer: release once *every* input has arrived.

    ``release`` fires at ``max(inputs) + slack`` — the barrier
    admission the event simulator and GRL flip-flop chains realize
    identically; ``first`` taps ``min(inputs)`` so a composition can
    also race against the earliest arrival.
    """
    if n < 2:
        raise KernelError("barrier needs at least two inputs")
    if slack < 0:
        raise KernelError("barrier slack must be non-negative")
    b = NetworkBuilder("barrier")
    xs = [b.input(f"x{i}") for i in range(n)]
    b.output("release", b.inc(b.max(*xs), slack))
    b.output("first", b.min(*xs))
    return Kernel.from_builder(
        b,
        name="barrier",
        description=f"{n}-way all-arrived barrier (+{slack} slack)",
    )


def router(n: int = 3) -> Kernel:
    """A k-way earliest-wins selector (1-WTA over *n* lines).

    Output ``y{i}`` relays input ``x{i}`` iff it strictly preceded every
    other input; on ties no line wins (all outputs ``∞``).  This is the
    paper's WTA inhibition built directly from ``min``/``lt``.
    """
    if n < 2:
        raise KernelError("router needs at least two lines")
    b = NetworkBuilder("router")
    xs = [b.input(f"x{i}") for i in range(n)]
    for i, x in enumerate(xs):
        others = [xs[j] for j in range(n) if j != i]
        b.output(f"y{i}", b.lt(x, b.min(*others)))
    return Kernel.from_builder(
        b,
        name="router",
        description=f"{n}-way earliest-wins selector (strict 1-WTA)",
    )


def accumulator(n: int = 4, k: int = 2) -> Kernel:
    """Fire at the k-th earliest arrival of *n* inputs (a counting cell).

    Uses the order-statistic identity ``kth-smallest = min over all
    k-subsets S of max(S)``: the max over any k lines is at least the
    k-th arrival, and the subset of the k earliest lines achieves it.
    ``k=1`` degenerates to ``min`` (first arrival), ``k=n`` to ``max``
    (the barrier).  A silent line (``∞``) simply never completes any
    subset containing it.
    """
    if n < 2:
        raise KernelError("accumulator needs at least two inputs")
    if not 1 <= k <= n:
        raise KernelError(f"accumulator threshold k={k} outside 1..{n}")
    b = NetworkBuilder("accumulator")
    xs = [b.input(f"x{i}") for i in range(n)]
    if k == 1:
        kth = b.min(*xs)
    elif k == n:
        kth = b.max(*xs)
    else:
        kth = b.min(*(b.max(*subset) for subset in combinations(xs, k)))
    b.output("kth", kth)
    return Kernel.from_builder(
        b,
        name="accumulator",
        description=f"fires at the {k}-th of {n} arrivals",
    )


# ---------------------------------------------------------------------------
# The registry: each entry carries the per-kernel contract configuration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KernelSpec:
    """Registry entry: factory plus the contract/demo configuration."""

    factory: Callable[..., Kernel]
    description: str
    #: Window for the inferred function-table contract (≥ history bound).
    table_window: int
    #: One deterministic, interesting volley for the CLI demo printout.
    demo_volley: tuple
    #: Keyword variants the random composition generator may draw.
    variants: tuple[dict, ...] = field(default_factory=lambda: ({},))

    def build(self, **kwargs) -> Kernel:
        return self.factory(**kwargs)


KERNELS: dict[str, KernelSpec] = {
    "interval-shift": KernelSpec(
        interval_shift,
        "shift both interval endpoints later by a constant",
        table_window=3,
        demo_volley=(1, 4),
        variants=({}, {"amount": 1}, {"amount": 3}),
    ),
    "interval-min": KernelSpec(
        interval_min,
        "pointwise min (lattice meet) of two intervals",
        table_window=2,
        demo_volley=(1, 4, 2, 3),
    ),
    "interval-max": KernelSpec(
        interval_max,
        "pointwise max (lattice join) of two intervals",
        table_window=2,
        demo_volley=(1, 4, 2, 3),
    ),
    "interval-union": KernelSpec(
        interval_union,
        "interval hull: earliest lo, latest hi",
        table_window=2,
        demo_volley=(1, 4, 2, 3),
    ),
    "interval-intersect": KernelSpec(
        interval_intersect,
        "interval intersection with a positive-width witness",
        table_window=2,
        demo_volley=(1, 4, 2, 6),
    ),
    "latch": KernelSpec(
        latch,
        "capture data iff it strictly precedes close",
        table_window=3,
        demo_volley=(1, 3),
        variants=({}, {"hold": 1}, {"hold": 2}),
    ),
    "barrier": KernelSpec(
        barrier,
        "n-way all-arrived barrier with slack",
        table_window=2,
        demo_volley=(0, 2, 1),
        variants=({}, {"n": 2, "slack": 0}, {"n": 4, "slack": 2}),
    ),
    "router": KernelSpec(
        router,
        "k-way earliest-wins selector (strict 1-WTA)",
        table_window=2,
        demo_volley=(2, 0, 1),
        variants=({}, {"n": 2}, {"n": 4}),
    ),
    "accumulator": KernelSpec(
        accumulator,
        "fires at the k-th of n arrivals (counting cell)",
        table_window=2,
        demo_volley=(3, 0, INF, 1),
        variants=({}, {"n": 3, "k": 2}, {"n": 4, "k": 3}, {"n": 2, "k": 1}),
    ),
}


def kernel_names() -> list[str]:
    """Registered kernel names, in registry order."""
    return list(KERNELS)


def build_kernel(name: str, **kwargs) -> Kernel:
    """Instantiate a registry kernel by name (default arguments unless
    overridden)."""
    spec = KERNELS.get(name)
    if spec is None:
        raise KernelError(
            f"unknown kernel {name!r}; registered: {', '.join(KERNELS)}"
        )
    return spec.build(**kwargs)


def demo_network(name: str) -> Network:
    """The kernel's served demo model: its default build, as a Network.

    Pure function of *name* — server and load generator both call this
    so the loadgen's local byte-check oracle is bit-identical (same
    fingerprint) to what the server registered.
    """
    kernel = build_kernel(name)
    return kernel.network(name=f"kernel-{name}")
