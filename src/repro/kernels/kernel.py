"""The reusable s-t kernel: an IR subprogram with named ports.

A :class:`Kernel` packages one :class:`~repro.ir.program.Program` as a
composable unit of space-time computation, in the spirit of STICK
(Lagorce & Benosman): the program's ``input`` terminals are the kernel's
**input ports**, its named outputs are the **output ports**, and the
composition operator (:mod:`repro.kernels.compose`) wires ports of
several kernel *instances* together into one flat program that flows
through the ordinary pass pipeline and every execution backend.

Kernels are immutable.  Port renaming (:meth:`Kernel.renamed`) returns a
fresh kernel — renaming is how a library kernel is adapted to a
composition's wiring plan without touching its structure.

Every kernel also carries the repo's standard *contract* surface:

* :meth:`Kernel.function_table` infers the normalized function table
  (:class:`~repro.core.table.NormalizedTable`) of one output port over a
  bounded window — the paper's §III.F finite specification of the
  bounded s-t function the kernel denotes;
* :meth:`Kernel.contract` infers one table per output port;
* the conformance generator family ``kernels``
  (:mod:`repro.testing.generators`) fuzzes randomly composed kernel
  networks across all five backends.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Optional

from ..core.table import NormalizedTable
from ..core.value import Time
from ..ir.program import Program, ensure_program, lower
from ..network.blocks import Node
from ..network.builder import NetworkBuilder
from ..network.graph import Network, NetworkError


class KernelError(ValueError):
    """Raised for malformed kernels or bad port references."""


class Kernel:
    """One reusable s-t subprogram with named input/output ports."""

    __slots__ = ("name", "program", "description")

    def __init__(
        self,
        program: Program | Network,
        *,
        name: Optional[str] = None,
        description: str = "",
    ):
        self.program: Program = ensure_program(program)
        self.name = name or self.program.name
        self.description = description
        if not self.program.outputs:
            raise KernelError(f"kernel {self.name!r} has no output ports")

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_builder(
        cls,
        builder: NetworkBuilder,
        *,
        name: Optional[str] = None,
        description: str = "",
    ) -> "Kernel":
        """Freeze a :class:`NetworkBuilder` into a kernel."""
        return cls(lower(builder.build()), name=name, description=description)

    # -- ports ------------------------------------------------------------------
    @property
    def inputs(self) -> list[str]:
        """Input port names, in declaration order."""
        return self.program.input_names

    @property
    def outputs(self) -> list[str]:
        """Output port names, in declaration order."""
        return self.program.output_names

    @property
    def params(self) -> list[str]:
        """Configuration (micro-weight) port names."""
        return self.program.param_names

    @property
    def arity(self) -> int:
        return len(self.program.input_ids)

    def __repr__(self) -> str:
        return (
            f"Kernel({self.name!r}: {', '.join(self.inputs)} -> "
            f"{', '.join(self.outputs)}; {self.program.size} blocks)"
        )

    def describe(self) -> str:
        """One human-readable line per port plus the block count."""
        lines = [f"kernel {self.name}: {self.description}".rstrip(": ")]
        lines.append(f"  in:  {', '.join(self.inputs) or '(none)'}")
        if self.params:
            lines.append(f"  cfg: {', '.join(self.params)}")
        lines.append(f"  out: {', '.join(self.outputs)}")
        lines.append(
            f"  {self.program.size} block(s), depth {self.program.depth}"
        )
        return "\n".join(lines)

    # -- adaptation -------------------------------------------------------------
    def renamed(
        self,
        *,
        inputs: Optional[Mapping[str, str]] = None,
        outputs: Optional[Mapping[str, str]] = None,
        name: Optional[str] = None,
    ) -> "Kernel":
        """A fresh kernel with ports renamed (structure untouched).

        Port names are the composition wiring keys, so renaming is the
        adapter between a library kernel's generic ports and a concrete
        plan's labels.  Unknown old names raise; collisions among the
        new names raise (ports must stay unique).
        """
        in_map = dict(inputs or {})
        out_map = dict(outputs or {})
        unknown = set(in_map) - set(self.inputs)
        if unknown:
            raise KernelError(f"unknown input port(s): {sorted(unknown)}")
        unknown = set(out_map) - set(self.outputs)
        if unknown:
            raise KernelError(f"unknown output port(s): {sorted(unknown)}")
        nodes = []
        for node in self.program.nodes:
            if node.kind == "input" and node.name in in_map:
                nodes.append(
                    Node(
                        node.id,
                        "input",
                        name=in_map[node.name],
                        tags=node.tags,
                    )
                )
            else:
                nodes.append(node)
        new_inputs = [in_map.get(p, p) for p in self.inputs]
        if len(set(new_inputs)) != len(new_inputs):
            raise KernelError(f"renamed input ports collide: {new_inputs}")
        new_outputs = {
            out_map.get(port, port): nid
            for port, nid in self.program.outputs.items()
        }
        if len(new_outputs) != len(self.program.outputs):
            raise KernelError("renamed output ports collide")
        program = Program(
            tuple(nodes),
            new_outputs,
            name=name or self.name,
            provenance=self.program.provenance,
        )
        return Kernel(
            program, name=name or self.name, description=self.description
        )

    # -- evaluation and the contract surface ------------------------------------
    def network(self, *, name: Optional[str] = None) -> Network:
        """The kernel as a plain :class:`Network` (for serving, serialization)."""
        return self.program.to_network(name=name or f"kernel-{self.name}")

    def evaluate(
        self,
        volley,
        *,
        params: Optional[Mapping[str, Time]] = None,
    ) -> dict[str, Time]:
        """One volley through the compiled engine, outputs keyed by port."""
        from ..network.compile_plan import decode_matrix, evaluate_batch

        volley = tuple(volley)
        if len(volley) != self.arity:
            raise KernelError(
                f"kernel {self.name!r} takes {self.arity} input(s), "
                f"got {len(volley)}"
            )
        matrix = evaluate_batch(self.program, [volley], params=params)
        row = decode_matrix(matrix)[0]
        return dict(zip(self.outputs, row))

    def function_table(
        self,
        output: Optional[str] = None,
        *,
        window: int,
        params: Optional[Mapping[str, Time]] = None,
    ) -> NormalizedTable:
        """Infer the normalized function table of one output port.

        The finite §III.F specification of the bounded s-t function this
        port denotes — exact whenever *window* is at least the kernel's
        history bound.  Inference is batched (one compiled call over the
        whole normalized window domain).
        """
        if output is None:
            if len(self.outputs) != 1:
                raise KernelError(
                    f"kernel {self.name!r} has {len(self.outputs)} output "
                    "ports; pass output="
                )
            output = self.outputs[0]
        try:
            return NormalizedTable.from_network(
                self.program, window=window, output=output, params=params
            )
        except NetworkError as error:
            raise KernelError(str(error)) from error

    def contract(
        self,
        *,
        window: int,
        params: Optional[Mapping[str, Time]] = None,
    ) -> dict[str, NormalizedTable]:
        """One inferred function table per output port."""
        return {
            port: self.function_table(port, window=window, params=params)
            for port in self.outputs
        }
