"""Quickstart: the space-time algebra in five minutes.

Walks the paper's core pipeline end to end:

1. values in N0∞ and the four primitives,
2. a normalized function table (the paper's Fig. 7 example),
3. Theorem 1 — synthesizing the table into a min/lt/inc network,
4. three execution semantics of the same network: denotational,
   event-driven spikes, and cycle-accurate CMOS (generalized race logic).

Run:  python examples/quickstart.py
"""

from repro.core import (
    FIG7_TABLE,
    INF,
    inc,
    lt,
    maximum,
    minimum,
    synthesize,
    verify,
)
from repro.network import evaluate_vector, simulate
from repro.racelogic import GRLExecutor


def main() -> None:
    print("=== 1. The algebra ===")
    print(f"min(3, 7)  = {minimum(3, 7)}   (first arrival)")
    print(f"max(3, 7)  = {maximum(3, 7)}   (last arrival)")
    print(f"lt(3, 7)   = {lt(3, 7)}   (3 passes: it is strictly earlier)")
    print(f"lt(7, 3)   = {lt(7, 3)}   (no spike: 7 lost the race)")
    print(f"inc(3)     = {inc(3)}   (one unit of delay)")
    print(f"min(INF,5) = {minimum(INF, 5)}   (INF = no spike, the identity of min)")

    print("\n=== 2. A normalized function table (paper Fig. 7) ===")
    print(FIG7_TABLE.pretty())
    print(f"\nevaluate([3,4,5]): normalize -> [0,1,2] -> 3, shift back -> "
          f"{FIG7_TABLE.evaluate((3, 4, 5))}")

    print("\n=== 3. Theorem 1: compile the table to primitives ===")
    net = synthesize(FIG7_TABLE)
    print(f"built {net}")
    print(f"blocks by kind: {net.counts_by_kind()}")
    report = verify(net.as_function(), window=4)
    print(f"s-t properties (causality, invariance, totality): {report}")

    print("\n=== 4. Three ways to run the same network ===")
    vec = (3, 4, 5)
    print(f"denotational   : {evaluate_vector(net, vec)}")

    spikes = simulate(net, dict(zip(net.input_names, vec)))
    print(f"event-driven   : {spikes.outputs}  "
          f"({spikes.total_spikes} spikes, makespan {spikes.makespan})")

    grl = GRLExecutor(net)
    result = grl.run(dict(zip(net.input_names, vec)))
    print(f"CMOS race logic: {result.outputs}  "
          f"({result.transition_count} signal transitions, "
          f"{grl.circuit.flipflop_count} flip-flops)")

    print("\nAll three agree — the paper's §V claim in action.")


if __name__ == "__main__":
    main()
