"""Race-logic shortest paths: computing with physical time (paper §V).

The original race logic application (Madhavan et al.): race signals
through a DAG whose edges are pure delays; each node's wire falls at its
shortest distance from the source.  Here the solver is expressed as a
space-time network of min/inc primitives, compiled to a CMOS netlist, and
simulated cycle by cycle — distances are read directly off the falling
edges and checked against Dijkstra.

Run:  python examples/race_shortest_path.py
"""

import random

from repro.racelogic import (
    build_race_network,
    compile_network,
    dijkstra,
    race_shortest_paths,
    race_shortest_paths_digital,
    random_dag,
)


def main() -> None:
    rng = random.Random(7)
    graph = random_dag(10, edge_probability=0.35, max_weight=7, rng=rng)
    print(f"random DAG: {len(graph.nodes)} nodes, {graph.edge_count} edges, "
          f"total weight {graph.total_weight}")
    for u in graph.nodes:
        for v, w in graph.edges[u]:
            print(f"  {u} --{w}--> {v}")

    print("\n=== Dijkstra (software baseline) ===")
    reference = dijkstra(graph, 0)
    print({node: str(d) for node, d in reference.items()})

    print("\n=== Race logic: distances as spike times ===")
    racing = race_shortest_paths(graph, 0)
    print({node: str(d) for node, d in racing.items()})
    assert racing == reference

    network = build_race_network(graph, 0)
    circuit = compile_network(network)
    print(f"\nsolver network: {network}")
    print(f"compiled CMOS:  {circuit}")
    print(f"flip-flops = total edge weight = {circuit.flipflop_count}")

    print("\n=== Cycle-accurate CMOS simulation ===")
    digital, transitions = race_shortest_paths_digital(graph, 0)
    assert digital == reference
    print({node: str(d) for node, d in digital.items()})
    print(f"signal transitions during the computation: {transitions}")
    print("\nThe answer *is* the time it took to compute it — the shortest")
    print("path emerges after exactly that many clock cycles.")


if __name__ == "__main__":
    main()
