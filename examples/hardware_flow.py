"""The full hardware flow: specify → synthesize → optimize → export.

The developer journey the paper's §V enables, end to end:

1. specify a bounded s-t function as a normalized table,
2. minimize the table and synthesize the minterm network (Theorem 1),
3. optimize the network (CSE, inc fusion, lattice identities),
4. bound its timing with static analysis,
5. compile to a GRL netlist and verify on the cycle-accurate simulator,
6. export synthesizable structural Verilog and a JSON netlist.

Run:  python examples/hardware_flow.py [output-dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.core import INF, NormalizedTable, minimize, synthesize
from repro.core.function import enumerate_domain
from repro.network import (
    default_input_window,
    evaluate,
    makespan_bound,
    optimize,
    save,
    structure,
)
from repro.racelogic import GRLExecutor, compile_network, save_verilog


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro-hw-")
    )
    out_dir.mkdir(parents=True, exist_ok=True)

    print("=== 1. Specification: a normalized function table ===")
    table = NormalizedTable(
        {
            (0, 1, 2): 3,
            (1, 0, INF): 2,
            (2, 2, 0): 2,
            (0, INF, 1): 4,
            (0, INF, 2): 4,  # redundant next to a wider row below
            (0, INF, INF): 4,
        }
    )
    print(table.pretty())

    print("\n=== 2. Minimize + synthesize (Theorem 1) ===")
    minimal = minimize(table)
    print(f"minimized: {len(table)} -> {len(minimal)} rows")
    net = synthesize(minimal)
    print(f"synthesized: {structure(net)}")

    print("\n=== 3. Optimize ===")
    net, report = optimize(net)
    print(f"optimized: {report}")

    print("\n=== 4. Static timing ===")
    bound = makespan_bound(net, default_input_window(net, 7))
    print(f"with inputs in [0, 7], no spike can occur after t = {bound}")

    print("\n=== 5. Compile to GRL and verify ===")
    circuit = compile_network(net)
    print(f"netlist: {circuit}")
    executor = GRLExecutor(net)
    mismatches = sum(
        1
        for vec in enumerate_domain(3, 4)
        if executor.outputs(dict(zip(net.input_names, vec)))
        != evaluate(net, dict(zip(net.input_names, vec)))
    )
    print(f"cycle-accurate vs denotational over window 4: "
          f"{mismatches} mismatches")

    print("\n=== 6. Export ===")
    verilog_path = out_dir / "design.v"
    network_path = out_dir / "network.json"
    save_verilog(circuit, verilog_path, module_name="st_function")
    save(net, network_path)
    print(f"wrote {verilog_path} ({verilog_path.stat().st_size} bytes)")
    print(f"wrote {network_path} ({network_path.stat().st_size} bytes)")
    print("\nfirst lines of the Verilog:")
    for line in verilog_path.read_text().splitlines()[:10]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
