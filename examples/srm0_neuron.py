"""Spiking neurons from digital primitives (paper §IV, Figs. 10–12).

Builds an SRM0 neuron three ways and shows they are the same function:

* the behavioral model a neuroscience simulator would use,
* the paper's Fig. 12 construction — response-function fanout, bitonic
  sorting networks, lt races against the threshold, a final min,
* the same construction compiled to CMOS gates (generalized race logic).

Also prints the biexponential response function and its up/down step
decomposition (Fig. 11).

Run:  python examples/srm0_neuron.py
"""

from repro.core import INF
from repro.core.function import enumerate_domain
from repro.neuron import (
    ResponseFunction,
    SRM0Neuron,
    build_srm0_network,
)
from repro.network import structure
from repro.racelogic import GRLExecutor


def ascii_plot(response: ResponseFunction) -> str:
    lines = []
    for level in range(response.r_max, 0, -1):
        row = "".join("#" if response(t) >= level else " " for t in range(response.t_max + 1))
        lines.append(f"{level:>2} |{row}")
    lines.append("   +" + "-" * (response.t_max + 1))
    lines.append("    " + "".join(str(t % 10) for t in range(response.t_max + 1)))
    return "\n".join(lines)


def main() -> None:
    print("=== The biexponential response function (Fig. 11) ===")
    response = ResponseFunction.biexponential(amplitude=5, t_max=12)
    print(ascii_plot(response))
    train = response.steps()
    print(f"\nup steps at offsets   {train.ups}")
    print(f"down steps at offsets {train.downs}")
    print("(each step becomes one 'inc' block in the fanout network)")

    print("\n=== An SRM0 neuron, three ways ===")
    weights = [3, 2, 1]
    threshold = 8
    neuron = SRM0Neuron.homogeneous(
        3, weights, base_response=ResponseFunction.biexponential(amplitude=3, t_max=8),
        threshold=threshold,
    )
    print(f"weights {weights}, threshold {threshold}")

    net = build_srm0_network(neuron)
    print(f"\nFig. 12 construction: {structure(net)}")

    grl = GRLExecutor(net)
    print(f"compiled to CMOS: {grl.circuit}")

    print("\ninput volley       behavioral  st-network  race-logic")
    for vec in [(0, 0, 0), (0, 1, 2), (0, 4, 8), (2, 0, INF), (INF, 0, 1)]:
        behavioral = neuron.fire_time(vec)
        network = net.as_function()(*vec)
        silicon = grl.outputs(dict(zip(net.input_names, vec)))["y"]
        print(f"{str(vec):<18} {str(behavioral):>10}  {str(network):>10}  {str(silicon):>10}")

    print("\nexhaustive check over the [0..4, INF]^3 window...")
    f = net.as_function()
    mismatches = sum(
        1 for vec in enumerate_domain(3, 4) if f(*vec) != neuron.fire_time(vec)
    )
    print(f"mismatches: {mismatches} (the Fig. 12 construction is exact)")

    print("\nNote how the neuron fires *earlier* for coincident inputs")
    print("(0,0,0) than for dispersed ones (0,4,8) — temporal coincidence")
    print("detection is the basic TNN computation.")


if __name__ == "__main__":
    main()
