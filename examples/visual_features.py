"""Emergent orientation-selective receptive fields (§II.C's V1 story).

The classic STDP-TNN demonstration: latency-coded images of oriented
bars drive a WTA column; after unsupervised STDP with homeostasis, each
neuron's weight vector has *become* an oriented filter — printed here as
ASCII receptive fields next to the stimuli that drive them.

Run:  python examples/visual_features.py
"""

from repro.apps.vision import (
    ORIENTATIONS,
    OrientationExperiment,
    bar_dataset,
    oriented_bar,
)


def ascii_image(image, *, shades=" .:-=+*#%@") -> list[str]:
    top = max(float(image.max()), 1.0)
    rows = []
    for row in image:
        rows.append(
            "".join(
                shades[min(len(shades) - 1, int(v / top * (len(shades) - 1)))]
                for v in row
            )
        )
    return rows


def main() -> None:
    print("=== Stimuli: latency-coded oriented bars ===")
    blocks = [ascii_image(oriented_bar(7, o)) for o in ORIENTATIONS]
    print("   " + "   ".join(f"{o}°".center(7) for o in ORIENTATIONS))
    for row in range(7):
        print("   " + "   ".join(block[row] for block in blocks))

    print("\n=== Unsupervised STDP training (no labels) ===")
    samples = bar_dataset(presentations=80, seed=7)
    experiment = OrientationExperiment(seed=7)
    experiment.train(samples, epochs=3)
    print(f"trained on {len(samples)} jittered, noisy presentations")

    fresh = bar_dataset(presentations=40, seed=1234)
    purity, claimed = experiment.selectivity_report(fresh)
    print(f"selectivity on fresh data: purity {purity:.0%} "
          f"(chance 25%), {claimed}/{len(ORIENTATIONS)} orientations claimed")

    print("\n=== Learned receptive fields (weight vectors as images) ===")
    preferences = experiment.preferred_orientations()
    for neuron in range(experiment.column.n_neurons):
        field = experiment.receptive_field(neuron)
        preferred = preferences.get(neuron)
        match = experiment.field_orientation_match(neuron)
        print(f"\nneuron {neuron}: prefers {preferred}°, "
              f"field looks like {match}°")
        for row in ascii_image(field):
            print(f"   {row}")

    print("\nThe filters were never told what a bar is — orientation")
    print("selectivity emerged from spike timing + STDP + WTA alone.")


if __name__ == "__main__":
    main()
