"""Reproduction of the paper's Fig. 4 example: trajectory tracking.

Bichler et al. trained a TNN on DVS/AER recordings of freeway traffic;
after unsupervised STDP, individual neurons specialized to individual
lanes.  The original recordings are unavailable, so this reproduction
synthesizes the workload — blobs sweeping across lanes of a pixel grid,
difference-encoded into AER events — and runs the same architecture:
AER sensor -> spike volleys -> excitatory neurons -> WTA inhibition,
trained with STDP.

Run:  python examples/trajectory_tracking.py
"""

from repro.apps.trajectory import (
    TrafficConfig,
    TrajectoryTracker,
    synthesize_traffic,
    windows_with_labels,
)


def main() -> None:
    config = TrafficConfig(width=16, height=8, n_lanes=2, seed=42)
    print(f"sensor: {config.width}x{config.height}, {config.n_lanes} lanes")

    print("\n=== Synthesizing AER traffic ===")
    stream, schedule = synthesize_traffic(config, n_vehicles=14)
    print(f"{len(stream)} AER events over {stream.duration} ticks "
          f"({len(schedule)} vehicles)")
    train_data = windows_with_labels(stream, schedule, window=4)
    print(f"{len(train_data)} labeled spike volleys "
          f"({train_data[0].volley.spike_count} spikes in the first)")

    print("\n=== Unsupervised STDP training ===")
    tracker = TrajectoryTracker(config, seed=42)
    tracker.train(train_data, epochs=3)
    print(f"column: {tracker.column}")

    print("\n=== Evaluation on fresh traffic ===")
    test_stream, test_schedule = synthesize_traffic(
        TrafficConfig(width=16, height=8, n_lanes=2, seed=4242), n_vehicles=8
    )
    test_data = windows_with_labels(test_stream, test_schedule, window=4)
    result = tracker.evaluate(test_data)

    print(f"lane purity          : {result.lane_purity:.1%}")
    print(f"window coverage      : {result.coverage:.1%}")
    print(f"distinct lanes found : {result.distinct_lanes_claimed} "
          f"of {config.n_lanes}")
    print("\nneuron -> lane specialization:")
    for neuron, lane in sorted(result.lane_of_neuron.items()):
        print(f"  neuron {neuron} tracks lane {lane}")

    print("\nNo labels were used in training: lane specialization emerged")
    print("from STDP + WTA alone, as in Bichler et al.")


if __name__ == "__main__":
    main()
