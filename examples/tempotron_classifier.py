"""Supervised spike-timing classification with the tempotron (§II.C).

Gütig & Sompolinsky's tempotron is an SRM0 neuron trained to fire on one
class of spike volleys and stay silent on another.  This example trains a
binary tempotron on jittered latency patterns, then a one-per-class bank
on a three-class problem (Zhao et al.'s AER categorization scheme:
earliest spike decides).

Run:  python examples/tempotron_classifier.py
"""

import random

from repro.apps.datasets import random_pattern, two_class_latency
from repro.coding.volley import Volley
from repro.learning import MultiClassTempotron, Tempotron


def main() -> None:
    print("=== Binary tempotron ===")
    volleys, labels = two_class_latency(
        n_lines=16, per_class=15, window=8, jitter=1, seed=11
    )
    volley_tuples = [tuple(v) for v in volleys]
    tempotron = Tempotron(16, threshold=50, rng=random.Random(11))
    print(f"before training: accuracy {tempotron.accuracy(volley_tuples, labels):.1%}")
    history = tempotron.train(
        volley_tuples, labels, epochs=25, rng=random.Random(12)
    )
    print(f"training epochs: {len(history)}, "
          f"accuracy history: {[f'{h:.0%}' for h in history]}")
    print(f"after training : accuracy {tempotron.accuracy(volley_tuples, labels):.1%}")
    print(f"learned weights: {tempotron.weights.tolist()}")

    print("\n=== Three-class bank (earliest spike decides) ===")
    rng = random.Random(21)
    patterns = [
        random_pattern(20, active_lines=10, window=8, rng=rng) for _ in range(3)
    ]
    from repro.core import INF, Infinity

    data = []
    for label, pattern in enumerate(patterns):
        for _ in range(10):
            jittered = tuple(
                INF if isinstance(t, Infinity)
                else max(0, int(t) + rng.randint(-1, 1))
                for t in pattern
            )
            data.append((jittered, label))
    rng.shuffle(data)
    volley_list = [Volley(v).times for v, _ in data]
    label_list = [label for _, label in data]

    bank = MultiClassTempotron.create(3, 20, threshold=45, rng=random.Random(3))
    history = bank.train(volley_list, label_list, epochs=30, rng=random.Random(4))
    print(f"multi-class accuracy history: {[f'{h:.0%}' for h in history]}")

    hits = sum(
        1 for v, label in zip(volley_list, label_list) if bank.predict(v) == label
    )
    print(f"final accuracy: {hits / len(label_list):.1%} on {len(label_list)} volleys")


if __name__ == "__main__":
    main()
