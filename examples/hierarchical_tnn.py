"""Hierarchical (multi-layer) TNNs and the liquid state machine extension.

Two steps beyond the single column:

1. a **two-layer TNN** trained greedily with layer-wise STDP — the
   direction the paper's survey highlights (Kheradpisheh et al.'s push
   toward multiple excitatory layers) — then compiled, end to end, into
   a single network of min/max/lt/inc primitives (Lemma 1 at depth);
2. a **liquid state machine** — the recurrent cousin the paper says the
   theory "may potentially be extended to include": a fixed random
   reservoir whose round-by-round state accumulates *sequence* identity
   that no feedforward volley computation can capture.

Run:  python examples/hierarchical_tnn.py
"""

import random

from repro.analysis.viz import raster
from repro.apps.liquid import sequence_classification_experiment
from repro.coding.volley import Volley
from repro.core.value import INF, Infinity
from repro.network import evaluate_vector, structure
from repro.neuron import LayeredTNN, compile_layered, train_layerwise


def main() -> None:
    print("=== A two-layer TNN, trained layer by layer ===")
    rng = random.Random(3)
    patterns = [
        tuple(rng.randint(0, 3) for _ in range(12)) for _ in range(4)
    ]
    volleys = [p for p in patterns for _ in range(8)]

    tnn = LayeredTNN.random([12, 8, 4], threshold_fraction=0.2, seed=3)
    print(f"stack: 12 inputs -> 8 neurons -> 4 neurons "
          f"({tnn.n_layers} layers)")
    train_layerwise(tnn, volleys, epochs_per_layer=2, seed=3)

    print("\nlayer activations for pattern 0:")
    trace = tnn.activations(patterns[0])
    print(raster(
        [Volley(patterns[0]), Volley(trace[0]), Volley(trace[1])],
        labels=["input volley", "layer 1 (after WTA)", "layer 2 (after WTA)"],
    ))

    responding = sum(
        1
        for p in patterns
        if any(not isinstance(t, Infinity) for t in tnn.forward(p))
    )
    print(f"\npatterns eliciting a layer-2 response: {responding}/4")

    print("\n=== The whole stack as one primitive network (Lemma 1) ===")
    net = compile_layered(tnn)
    print(structure(net))
    sample = patterns[0]
    behavioral = tnn.forward(sample)
    compiled = tuple(
        evaluate_vector(net, sample)[f"y{i + 1}"] for i in range(4)
    )
    print(f"behavioral output: {behavioral}")
    print(f"compiled output  : {compiled}")
    print(f"agree: {behavioral == compiled}")

    print("\n=== Liquid state machine: sequences, not snapshots ===")
    train_acc, test_acc = sequence_classification_experiment(
        n_classes=3, sequence_length=4, seed=5
    )
    print(f"3-class volley-sequence classification "
          f"(chance 33%): train {train_acc:.0%}, test {test_acc:.0%}")
    print("The reservoir's recurrent state is what carries sequence")
    print("identity across rounds — the extension beyond feedforward TNNs.")


if __name__ == "__main__":
    main()
